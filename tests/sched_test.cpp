//===- tests/sched_test.cpp - DAG and scheduler unit tests ----------------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "sched/DepDAG.h"
#include "sched/Schedule.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;

namespace {

/// Instruction factory owning its storage so tests can build regions.
struct RegionBuilder {
  Function F;
  std::vector<Instr> Storage;

  Reg newInt() { return F.makeReg(RegClass::Int); }
  Reg newFp() { return F.makeReg(RegClass::Fp); }

  unsigned fload(Reg Dst, Reg Base, int64_t Off, int ArrayId = 0,
                 HitMiss HM = HitMiss::Unknown, int Group = -1,
                 bool ExactForm = true) {
    Instr I;
    I.Op = Opcode::FLoad;
    I.Dst = Dst;
    I.Base = Base;
    I.Offset = Off;
    I.Mem.ArrayId = ArrayId;
    I.Mem.HasForm = ExactForm;
    I.Mem.Const = Off;
    I.HM = HM;
    I.LocalityGroup = Group;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned fstore(Reg Val, Reg Base, int64_t Off, int ArrayId = 0,
                  bool ExactForm = true) {
    Instr I;
    I.Op = Opcode::FStore;
    I.SrcA = Val;
    I.Base = Base;
    I.Offset = Off;
    I.Mem.ArrayId = ArrayId;
    I.Mem.HasForm = ExactForm;
    I.Mem.Const = Off;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned fadd(Reg Dst, Reg A, Reg B) {
    Instr I;
    I.Op = Opcode::FAdd;
    I.Dst = Dst;
    I.SrcA = A;
    I.SrcB = B;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned iadd(Reg Dst, Reg A, int64_t Imm) {
    Instr I;
    I.Op = Opcode::IAdd;
    I.Dst = Dst;
    I.SrcA = A;
    I.Imm = Imm;
    I.HasImm = true;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  unsigned ret() {
    Instr I;
    I.Op = Opcode::Ret;
    Storage.push_back(I);
    return static_cast<unsigned>(Storage.size() - 1);
  }

  std::vector<const Instr *> ptrs() const {
    std::vector<const Instr *> P;
    for (const Instr &I : Storage)
      P.push_back(&I);
    return P;
  }
};

/// Asserts that \p Order is a permutation of [0,N) respecting all edges.
void expectValidTopo(const DepDAG &G, const std::vector<unsigned> &Order) {
  ASSERT_EQ(Order.size(), G.size());
  std::vector<unsigned> Pos(G.size());
  std::vector<bool> Seen(G.size(), false);
  for (unsigned K = 0; K != Order.size(); ++K) {
    ASSERT_LT(Order[K], G.size());
    ASSERT_FALSE(Seen[Order[K]]) << "duplicate node in schedule";
    Seen[Order[K]] = true;
    Pos[Order[K]] = K;
  }
  for (unsigned I = 0; I != G.size(); ++I)
    for (unsigned S : G.succs(I))
      EXPECT_LT(Pos[I], Pos[S]) << "edge " << I << "->" << S << " violated";
}

} // namespace

//===----------------------------------------------------------------------===//
// DAG construction
//===----------------------------------------------------------------------===//

TEST(DepDAG, RegisterDependences) {
  RegionBuilder B;
  Reg X = B.newFp(), Y = B.newFp(), Z = B.newFp(), Base = B.newInt();
  unsigned L = B.fload(X, Base, 0);
  unsigned A1 = B.fadd(Y, X, X); // true dep on L
  unsigned A2 = B.fadd(X, Y, Y); // anti dep on A1's read, output dep on L
  unsigned A3 = B.fadd(Z, Y, Y); // true dep on A1
  unsigned T = B.ret();
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_TRUE(G.hasEdge(L, A1));  // true
  EXPECT_TRUE(G.hasEdge(A1, A2)); // anti (Y read before X redef? no: X)
  EXPECT_TRUE(G.hasEdge(L, A2));  // output on X
  EXPECT_TRUE(G.hasEdge(A1, A3)); // true on Y
  EXPECT_FALSE(G.hasEdge(A2, A3));
  EXPECT_FALSE(G.hasEdge(L, T));
}

TEST(DepDAG, BlockControlEdges) {
  RegionBuilder B;
  Reg X = B.newFp(), Base = B.newInt();
  B.fload(X, Base, 0);
  unsigned T = B.ret();
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  addBlockControlEdges(G, P);
  EXPECT_TRUE(G.hasEdge(0, T));
}

TEST(DepDAG, DisambiguatesDistinctOffsets) {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg V = B.newFp(), W = B.newFp();
  unsigned S0 = B.fstore(V, Base, 0);
  unsigned L8 = B.fload(W, Base, 8);
  unsigned L0 = B.fload(V, Base, 0);
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_FALSE(G.hasEdge(S0, L8)) << "A[0] store vs A[1] load must not alias";
  EXPECT_TRUE(G.hasEdge(S0, L0)) << "same address must be ordered";
}

TEST(DepDAG, DistinctArraysNeverAlias) {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg V = B.newFp(), W = B.newFp();
  unsigned S = B.fstore(V, Base, 0, /*ArrayId=*/0, /*ExactForm=*/false);
  unsigned L = B.fload(W, Base, 0, /*ArrayId=*/1, HitMiss::Unknown, -1,
                       /*ExactForm=*/false);
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_FALSE(G.hasEdge(S, L));
}

TEST(DepDAG, InexactFormsOnSameArrayAlias) {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg V = B.newFp(), W = B.newFp();
  unsigned S = B.fstore(V, Base, 0, 0, /*ExactForm=*/false);
  unsigned L = B.fload(W, Base, 8, 0, HitMiss::Unknown, -1,
                       /*ExactForm=*/false);
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_TRUE(G.hasEdge(S, L));
}

TEST(DepDAG, EpochChangeForcesConservatism) {
  // fload A[form(i)]; i += 1; fstore A[form(i)]: the linear forms match
  // syntactically but i changed, so a dependence edge must exist.
  RegionBuilder B;
  Reg I = B.newInt();
  Reg Base = B.newInt();
  Reg V = B.newFp();
  Instr Ld;
  Ld.Op = Opcode::FLoad;
  Ld.Dst = V;
  Ld.Base = Base;
  Ld.Mem.ArrayId = 0;
  Ld.Mem.HasForm = true;
  Ld.Mem.Terms = {{I.Id, 8}};
  Ld.Mem.Const = 0;
  B.Storage.push_back(Ld);
  B.iadd(I, I, 1);
  Instr St;
  St.Op = Opcode::FStore;
  St.SrcA = V;
  St.Base = Base;
  St.Mem.ArrayId = 0;
  St.Mem.HasForm = true;
  St.Mem.Terms = {{I.Id, 8}};
  St.Mem.Const = 0; // same form, new epoch -> may overlap the load
  B.Storage.push_back(St);
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_TRUE(G.hasEdge(0, 2));
}

TEST(DepDAG, SameEpochDistinctConstNoAlias) {
  RegionBuilder B;
  Reg I = B.newInt();
  Reg Base = B.newInt();
  Reg V = B.newFp(), W = B.newFp();
  auto Mk = [&](int64_t C) {
    MemRef M;
    M.ArrayId = 0;
    M.HasForm = true;
    M.Terms = {{I.Id, 8}};
    M.Const = C;
    return M;
  };
  Instr St;
  St.Op = Opcode::FStore;
  St.SrcA = V;
  St.Base = Base;
  St.Mem = Mk(0);
  B.Storage.push_back(St);
  Instr Ld;
  Ld.Op = Opcode::FLoad;
  Ld.Dst = W;
  Ld.Base = Base;
  Ld.Mem = Mk(8);
  B.Storage.push_back(Ld);
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_FALSE(G.hasEdge(0, 1));
}

TEST(DepDAG, LoadLoadNeverOrdered) {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg V = B.newFp(), W = B.newFp();
  unsigned L0 = B.fload(V, Base, 0);
  unsigned L1 = B.fload(W, Base, 0); // same address, both loads
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_FALSE(G.hasEdge(L0, L1));
}

TEST(DepDAG, LocalityMissToHitArcs) {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg A = B.newFp(), C = B.newFp(), D = B.newFp();
  unsigned Miss = B.fload(A, Base, 0, 0, HitMiss::Miss, /*Group=*/7);
  unsigned Hit1 = B.fload(C, Base, 8, 0, HitMiss::Hit, 7);
  unsigned Hit2 = B.fload(D, Base, 16, 0, HitMiss::Hit, 7);
  DepDAG G = buildDepDAG(B.ptrs());
  EXPECT_TRUE(G.hasEdge(Miss, Hit1));
  EXPECT_TRUE(G.hasEdge(Miss, Hit2));
  EXPECT_FALSE(G.hasEdge(Hit1, Hit2));
}

TEST(DepDAG, ReachabilityClosure) {
  RegionBuilder B;
  Reg X = B.newFp(), Y = B.newFp(), Z = B.newFp(), Base = B.newInt();
  B.fload(X, Base, 0);
  B.fadd(Y, X, X);
  B.fadd(Z, Y, Y);
  DepDAG G = buildDepDAG(B.ptrs());
  std::vector<BitVec> R = G.reachability();
  EXPECT_TRUE(R[0].test(2)) << "transitive reachability";
  EXPECT_FALSE(R[2].test(0));
  EXPECT_FALSE(R[0].test(0)) << "no self reachability without a cycle";
}

//===----------------------------------------------------------------------===//
// Balanced weights (Figure 1 of the paper)
//===----------------------------------------------------------------------===//

namespace {

/// Builds the Figure-1 situation: independent loads L0 and L1, serial loads
/// L2 -> L3, and two independent non-load instructions X1, X2.
struct Figure1 {
  RegionBuilder B;
  unsigned L0, L1, L2, L3, X1, X2, T;
  std::vector<const Instr *> Ptrs;

  Figure1() {
    Reg Base = B.newInt();
    Reg R0 = B.newFp(), R1 = B.newFp(), R2 = B.newFp(), R3 = B.newFp();
    Reg Addr2 = B.newInt();
    Reg U = B.newFp(), V = B.newFp(), W = B.newFp();
    L0 = B.fload(R0, Base, 0);
    L1 = B.fload(R1, Base, 64);
    L2 = B.fload(R2, Base, 128);
    // L3 depends on L2 through its address register.
    {
      Instr I;
      I.Op = Opcode::FtoI;
      I.Dst = Addr2;
      I.SrcA = R2;
      B.Storage.push_back(I);
    }
    unsigned Conv = static_cast<unsigned>(B.Storage.size() - 1);
    (void)Conv;
    L3 = B.fload(R3, Addr2, 0, /*ArrayId=*/1);
    X1 = B.fadd(V, U, U);
    X2 = B.fadd(W, V, V);
    T = B.ret();
    Ptrs = B.ptrs();
  }
};

} // namespace

TEST(Balance, Figure1Weights) {
  Figure1 F;
  DepDAG G = buildDepDAG(F.Ptrs);
  addBlockControlEdges(G, F.Ptrs);
  std::vector<double> W = balancedWeights(G, F.Ptrs);

  // X2 depends on X1 (through V), so for each of X1/X2/FtoI the available
  // load sets differ; the key property from the paper: independent loads
  // (L0, L1) end up with strictly larger weights than the serialized pair
  // (L2, L3), which split their padders.
  EXPECT_GT(W[F.L0], W[F.L2]);
  EXPECT_GT(W[F.L1], W[F.L3]);
  EXPECT_DOUBLE_EQ(W[F.L0], W[F.L1]);
  // Serial loads share every padder equally.
  EXPECT_NEAR(W[F.L2], W[F.L3], 1e-9);
  // Non-loads keep fixed latencies.
  EXPECT_DOUBLE_EQ(W[F.X1], 4.0);
  EXPECT_DOUBLE_EQ(W[F.T], 2.0);
}

TEST(Balance, ExactCreditAccounting) {
  // Minimal example with hand-computed weights: loads LA, LB independent,
  // load LC -> LD serial chain, one independent int op X.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg A = B.newFp(), Bv = B.newFp(), C = B.newFp(), D = B.newFp();
  Reg AddrC = B.newInt();
  Reg U = B.newInt();
  unsigned LA = B.fload(A, Base, 0);
  unsigned LB = B.fload(Bv, Base, 64);
  unsigned LC = B.fload(C, Base, 128);
  Instr Conv;
  Conv.Op = Opcode::FtoI;
  Conv.Dst = AddrC;
  Conv.SrcA = C;
  B.Storage.push_back(Conv);
  unsigned LD = B.fload(D, AddrC, 0, 1);
  [[maybe_unused]] unsigned X = B.iadd(U, U, 1);
  DepDAG G = buildDepDAG(B.ptrs());
  std::vector<double> W = balancedWeights(G, B.ptrs());

  // Padding credit for LA: from LB (1), LC (1), LD (1), Conv (1), X (1)
  //   - as part of node-iteration: for node X, avail = {LA,LB,LC,LD},
  //     components {LA},{LB},{LC,LD}: LA gets 1.
  //   - node LB: avail {LA, LC, LD} -> LA += 1. node LC: avail {LA,LB} ->
  //     LA += 1. node LD: avail {LA,LB} -> +1. node Conv: avail {LA,LB} ->
  //     +1. Total extra(LA) = 5 -> weight 6.
  EXPECT_NEAR(W[LA], 6.0, 1e-9);
  EXPECT_NEAR(W[LB], 6.0, 1e-9);
  // extra(LC): node X gives 1/2, node LA gives 1/2, node LB gives 1/2
  //   -> 1.5 -> weight 2.5.
  EXPECT_NEAR(W[LC], 2.5, 1e-9);
  EXPECT_NEAR(W[LD], 2.5, 1e-9);
}

TEST(Balance, NoParallelismFallsBackToHitLatency) {
  // A single load with everything dependent on it: weight stays 2.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp();
  unsigned L = B.fload(X, Base, 0);
  B.fadd(Y, X, X);
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  std::vector<double> W = balancedWeights(G, P);
  EXPECT_DOUBLE_EQ(W[L], static_cast<double>(LoadHitLatency));
}

TEST(Balance, WeightCapApplies) {
  // 100 independent int ops padding one load would give weight 101; the cap
  // clamps it.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp();
  unsigned L = B.fload(X, Base, 0);
  for (int K = 0; K != 100; ++K) {
    Reg U = B.newInt();
    B.iadd(U, U, 1);
  }
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  std::vector<double> W = balancedWeights(G, P);
  EXPECT_DOUBLE_EQ(W[L], static_cast<double>(LoadWeightCap));
  BalanceOptions NoCap;
  NoCap.WeightCap = 1e9;
  std::vector<double> W2 = balancedWeights(G, P, NoCap);
  EXPECT_DOUBLE_EQ(W2[L], 101.0);
}

TEST(Balance, HitAnnotatedLoadsKeepOptimisticWeight) {
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp();
  unsigned Miss = B.fload(X, Base, 0, 0, HitMiss::Miss, 1);
  unsigned Hit = B.fload(Y, Base, 8, 0, HitMiss::Hit, 1);
  for (int K = 0; K != 10; ++K) {
    Reg U = B.newInt();
    B.iadd(U, U, 1);
  }
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  std::vector<double> W = balancedWeights(G, P);
  EXPECT_DOUBLE_EQ(W[Hit], static_cast<double>(LoadHitLatency));
  EXPECT_GT(W[Miss], static_cast<double>(LoadHitLatency));
}

TEST(Balance, LoadsPadOtherLoads) {
  // Two independent loads with no other instructions: each is the other's
  // only padder (non-blocking loads can issue back to back).
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp();
  unsigned L0 = B.fload(X, Base, 0);
  unsigned L1 = B.fload(Y, Base, 64);
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  std::vector<double> W = balancedWeights(G, P);
  EXPECT_DOUBLE_EQ(W[L0], 2.0); // 1 + 1 (credit from L1), floor at 2
  EXPECT_DOUBLE_EQ(W[L1], 2.0);
}

//===----------------------------------------------------------------------===//
// List scheduling
//===----------------------------------------------------------------------===//

TEST(ListSched, RespectsDependences) {
  Figure1 F;
  DepDAG G = buildDepDAG(F.Ptrs);
  addBlockControlEdges(G, F.Ptrs);
  std::vector<unsigned> Order =
      listSchedule(G, balancedWeights(G, F.Ptrs), F.Ptrs);
  expectValidTopo(G, Order);
  EXPECT_EQ(Order.back(), F.T) << "terminator must stay last";
}

TEST(ListSched, HigherPriorityIssuesFirst) {
  // Load (weight ~ big under balancing) should come before the independent
  // adds, because its critical path is longest.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp(), Y = B.newFp();
  Reg U = B.newInt();
  unsigned A1 = B.iadd(U, U, 1);
  unsigned L = B.fload(X, Base, 0);
  unsigned C = B.fadd(Y, X, X); // consumer of the load
  (void)C;
  unsigned T = B.ret();
  (void)T;
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  addBlockControlEdges(G, P);
  std::vector<unsigned> Order = listSchedule(G, balancedWeights(G, P), P);
  std::vector<unsigned> Pos(P.size());
  for (unsigned K = 0; K != Order.size(); ++K)
    Pos[Order[K]] = K;
  EXPECT_LT(Pos[L], Pos[A1]) << "load should be hoisted above the filler";
}

TEST(ListSched, OriginalOrderBreaksFullTies) {
  // Identical independent instructions: schedule preserves program order.
  RegionBuilder B;
  std::vector<unsigned> Ids;
  for (int K = 0; K != 5; ++K) {
    Reg U = B.newInt();
    Ids.push_back(B.iadd(U, U, 1));
  }
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  std::vector<unsigned> Order = listSchedule(G, traditionalWeights(P), P);
  EXPECT_EQ(Order, Ids);
}

TEST(ListSched, BalancedAndTraditionalDiverge) {
  // Construct a block where a miss-prone load competes with a long fixed
  // latency op; balanced scheduling hoists the load earlier than
  // traditional's optimistic weight would.
  lang::ParseResult PR = lang::parseProgram(R"(
array A[256];
array Out[8] output;
var s = 0.0;
var t = 0.0;
for (i = 0; i < 250; i += 1) {
  s = s + A[i] * 2.0 + A[i + 3];
  t = t * 1.000001 + s * s;
}
Out[0] = s + t;
)");
  ASSERT_TRUE(PR.ok()) << PR.Error;
  ASSERT_EQ(lang::checkProgram(PR.Prog), "");
  lower::LowerResult LR = lower::lowerProgram(PR.Prog);
  ASSERT_TRUE(LR.ok()) << LR.Error;

  Module MBal = LR.M;
  Module MTrad = LR.M;
  scheduleFunction(MBal, SchedulerKind::Balanced);
  scheduleFunction(MTrad, SchedulerKind::Traditional);
  EXPECT_EQ(verify(MBal), "");
  EXPECT_EQ(verify(MTrad), "");
  EXPECT_NE(printFunction(MBal.Fn), printFunction(MTrad.Fn));
  // Both still compute the same result.
  uint64_t Ref = interpret(LR.M).Checksum;
  EXPECT_EQ(interpret(MBal).Checksum, Ref);
  EXPECT_EQ(interpret(MTrad).Checksum, Ref);
}

TEST(ListSched, ScheduleFunctionPreservesSemantics) {
  const char *Sources[] = {
      R"(
array A[64] output;
for (i = 0; i < 64; i += 1) { A[i] = i * 2 + 1; }
)",
      R"(
array A[16][16];
array C[16][16] output;
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) { A[i][j] = i - j; }
}
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) { C[i][j] = A[i][j] * 3.0 + 1.0; }
}
)",
      R"(
array idx[32] int;
array A[32] output;
var t = 0.0;
for (i = 0; i < 32; i += 1) { idx[i] = 31 - i; }
for (i = 0; i < 32; i += 1) {
  if (i < 16) { t = 1.0; } else { t = -1.0; }
  A[idx[i]] = t * i;
}
)",
  };
  for (const char *Src : Sources) {
    lang::ParseResult PR = lang::parseProgram(Src);
    ASSERT_TRUE(PR.ok()) << PR.Error;
    ASSERT_EQ(lang::checkProgram(PR.Prog), "");
    lang::EvalResult Ref = lang::evalProgram(PR.Prog);
    ASSERT_TRUE(Ref.ok());
    for (SchedulerKind K :
         {SchedulerKind::Traditional, SchedulerKind::Balanced}) {
      lower::LowerResult LR = lower::lowerProgram(PR.Prog);
      ASSERT_TRUE(LR.ok()) << LR.Error;
      scheduleFunction(LR.M, K);
      ASSERT_EQ(verify(LR.M), "");
      EXPECT_EQ(interpret(LR.M).Checksum, Ref.Checksum) << Src;
    }
  }
}

//===----------------------------------------------------------------------===//
// Optimized-core regressions: the fast list scheduler must reproduce the
// reference implementation byte for byte on the shapes its two hot-path
// fixes target (duplicate producers, wide ready lists).
//===----------------------------------------------------------------------===//

TEST(ListSched, DuplicateProducerCountedOnce) {
  // An instruction reading the same register through both operands has ONE
  // producer edge; the pred-count bookkeeping must not count it twice. The
  // optimized core replaces the reference's linear already-seen scan with a
  // last-consumer stamp — the resulting schedule must be identical.
  RegionBuilder B;
  Reg Base = B.newInt();
  Reg X = B.newFp();
  unsigned L = B.fload(X, Base, 0);
  std::vector<unsigned> Consumers;
  for (int K = 0; K != 6; ++K) {
    Reg Y = B.newFp();
    Consumers.push_back(B.fadd(Y, X, X)); // both operands from one producer
  }
  B.ret();
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  addBlockControlEdges(G, P);
  std::vector<double> W = balancedWeights(G, P);
  std::vector<unsigned> Fast = listSchedule(G, W, P);
  std::vector<unsigned> Ref =
      listSchedule(G, W, P, DefaultPressureThreshold, SchedImpl::Reference);
  expectValidTopo(G, Fast);
  EXPECT_EQ(Fast, Ref);
  std::vector<unsigned> Pos(P.size());
  for (unsigned K = 0; K != Fast.size(); ++K)
    Pos[Fast[K]] = K;
  for (unsigned C : Consumers)
    EXPECT_LT(Pos[L], Pos[C]) << "consumer scheduled before its producer";
}

TEST(ListSched, WideReadyListMatchesReference) {
  // Dozens of simultaneously-ready candidates stress the tombstoned ready
  // list (the reference erases scheduled entries with an O(N) shift); scan
  // order — and with it every epsilon tie-break — must be preserved exactly.
  RegionBuilder B;
  Reg Base = B.newInt();
  for (int K = 0; K != 48; ++K) {
    if (K % 3 == 0) {
      Reg X = B.newFp();
      B.fload(X, Base, K, K % 5);
    } else {
      Reg U = B.newInt();
      B.iadd(U, U, K);
    }
  }
  // A few dependent chains so priorities genuinely differ across the list.
  Reg A = B.newFp();
  B.fload(A, Base, 100, 1);
  for (int K = 0; K != 4; ++K) {
    Reg Y = B.newFp();
    B.fadd(Y, A, A);
    A = Y;
  }
  B.ret();
  auto P = B.ptrs();
  DepDAG G = buildDepDAG(P);
  addBlockControlEdges(G, P);
  for (bool Balanced : {true, false}) {
    std::vector<double> W =
        Balanced ? balancedWeights(G, P) : traditionalWeights(P);
    std::vector<unsigned> Fast = listSchedule(G, W, P);
    std::vector<unsigned> Ref =
        listSchedule(G, W, P, DefaultPressureThreshold, SchedImpl::Reference);
    expectValidTopo(G, Fast);
    EXPECT_EQ(Fast, Ref) << (Balanced ? "balanced" : "traditional");
  }
}

TEST(DepDAG, FastBuilderMatchesReferenceEdgeForEdge) {
  // Mixed register reuse, aliasing stores, inexact forms, and epochs: the
  // bucketed memory-disambiguation pass must yield exactly the reference
  // builder's edge set (succ lists in the same order).
  RegionBuilder B;
  Reg Base = B.newInt();
  std::vector<Reg> Xs;
  for (int K = 0; K != 10; ++K) {
    Reg X = B.newFp();
    B.fload(X, Base, K % 4, K % 3, HitMiss::Unknown, -1, K % 4 != 1);
    Xs.push_back(X);
  }
  for (int K = 0; K + 1 < 10; K += 2) {
    Reg Y = B.newFp();
    B.fadd(Y, Xs[K], Xs[K + 1]);
    B.fstore(Y, Base, K, K % 3, K % 4 != 2);
  }
  B.iadd(Base, Base, 8); // redefines the base: epoch change
  Reg Z = B.newFp();
  B.fload(Z, Base, 0, 0);
  B.fstore(Z, Base, 2, 0);
  B.ret();
  auto P = B.ptrs();
  DepDAG Fast = buildDepDAG(P);
  DepDAG Ref = buildDepDAG(P, SchedImpl::Reference);
  ASSERT_EQ(Fast.size(), Ref.size());
  for (unsigned I = 0; I != Fast.size(); ++I) {
    EXPECT_EQ(Fast.succs(I), Ref.succs(I)) << "node " << I;
    EXPECT_EQ(Fast.preds(I), Ref.preds(I)) << "node " << I;
  }
}
