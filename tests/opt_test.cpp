//===- tests/opt_test.cpp - IR cleanup pass tests --------------------------===//

#include "driver/Compiler.h"
#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Generate.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::opt;

namespace {

Module lowerOk(const std::string &Src, lower::LowerOptions Opts = {}) {
  lang::ParseResult PR = lang::parseProgram(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  EXPECT_EQ(lang::checkProgram(PR.Prog), "");
  lower::LowerResult LR = lower::lowerProgram(PR.Prog, Opts);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return std::move(LR.M);
}

uint64_t instrCount(const Module &M) {
  uint64_t N = 0;
  for (const BasicBlock &B : M.Fn.Blocks)
    N += B.Instrs.size();
  return N;
}

} // namespace

TEST(Cleanup, PreservesSemanticsAndShrinksCode) {
  const char *Src = R"(
array A[32];
array Out[32] output;
var s = 0.0;
var t = 0.0;
for (i = 0; i < 32; i += 1) { A[i] = i * 1.5; }
for (i = 0; i < 32; i += 1) {
  t = A[i];
  s = t;
  Out[i] = s * 2.0;
}
)";
  Module M = lowerOk(Src);
  uint64_t Ref = interpret(M).Checksum;
  uint64_t Before = instrCount(M);
  CleanupStats S = cleanupModule(M);
  EXPECT_EQ(ir::verify(M), "");
  EXPECT_EQ(interpret(M).Checksum, Ref);
  EXPECT_GT(S.CopiesPropagated, 0);
  EXPECT_GT(S.DeadRemoved, 0);
  EXPECT_LT(instrCount(M), Before);
}

TEST(Cleanup, FoldsConstantChains) {
  // n*m with literal-int scalars folds down to immediate loads.
  const char *Src = R"(
array Out[4] output;
var a int = 6;
var b int = 7;
Out[0] = a * b + 0.0;
)";
  Module M = lowerOk(Src);
  uint64_t Ref = interpret(M).Checksum;
  CleanupStats S = cleanupModule(M);
  EXPECT_GT(S.ConstantsFolded, 0);
  EXPECT_EQ(interpret(M).Checksum, Ref);
  // No integer multiply should survive: 6*7 folded at compile time.
  for (const BasicBlock &B : M.Fn.Blocks)
    for (const Instr &I : B.Instrs)
      EXPECT_NE(I.Op, Opcode::IMul);
}

TEST(Cleanup, RemovesDeadLoads) {
  const char *Src = R"(
array A[16];
array Out[4] output;
var t = 0.0;
for (i = 0; i < 16; i += 1) {
  t = A[i];
}
Out[0] = 1.0;
)";
  // t is dead after the loop; without if-conversion nothing else reads it.
  Module M = lowerOk(Src);
  cleanupModule(M);
  int Loads = 0;
  for (const BasicBlock &B : M.Fn.Blocks)
    for (const Instr &I : B.Instrs)
      Loads += I.isLoad();
  EXPECT_EQ(Loads, 0) << "the dead A[i] loads must disappear";
}

TEST(Cleanup, KeepsStoresAndLiveCode) {
  const char *Src = R"(
array Out[8] output;
for (i = 0; i < 8; i += 1) { Out[i] = i * 2.0; }
)";
  Module M = lowerOk(Src);
  uint64_t Ref = interpret(M).Checksum;
  cleanupModule(M);
  int Stores = 0;
  for (const BasicBlock &B : M.Fn.Blocks)
    for (const Instr &I : B.Instrs)
      Stores += I.isStore();
  EXPECT_EQ(Stores, 1);
  EXPECT_EQ(interpret(M).Checksum, Ref);
}

TEST(Cleanup, CMovOldValueSurvives) {
  // The conditional move reads its old destination; cleanup must not treat
  // the prior write as dead.
  const char *Src = R"(
array Out[8] output;
var t = 0.0;
for (i = 0; i < 8; i += 1) {
  if (i < 4) { t = 1.0; } else { t = 2.0; }
  Out[i] = t;
}
)";
  Module M = lowerOk(Src);
  uint64_t Ref = interpret(M).Checksum;
  CleanupStats S = cleanupModule(M);
  (void)S;
  EXPECT_EQ(ir::verify(M), "");
  EXPECT_EQ(interpret(M).Checksum, Ref);
}

TEST(Cleanup, IdempotentAtFixpoint) {
  Module M = lowerOk(R"(
array A[32];
array Out[32] output;
for (i = 0; i < 32; i += 1) { Out[i] = A[i] + 1.0; }
)");
  cleanupModule(M);
  CleanupStats Second = cleanupModule(M);
  EXPECT_EQ(Second.CopiesPropagated, 0);
  EXPECT_EQ(Second.ConstantsFolded, 0);
  EXPECT_EQ(Second.DeadRemoved, 0);
}

TEST(Cleanup, FuzzedProgramsSurviveCleanup) {
  for (uint64_t Seed = 200; Seed != 240; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    lang::EvalResult Ref = lang::evalProgram(P);
    ASSERT_TRUE(Ref.ok());
    lower::LowerResult LR = lower::lowerProgram(P);
    ASSERT_TRUE(LR.ok());
    cleanupModule(LR.M);
    ASSERT_EQ(ir::verify(LR.M), "") << "seed " << Seed;
    EXPECT_EQ(interpret(LR.M).Checksum, Ref.Checksum) << "seed " << Seed;
  }
}

TEST(Cleanup, DriverAblationToggle) {
  lang::Program P = lang::generateProgram(7);
  lang::EvalResult Ref = lang::evalProgram(P);
  driver::CompileOptions On, Off;
  On.StopBeforeRegAlloc = true; // compare pre-allocation code size: LICM
  Off.StopBeforeRegAlloc = true; // lengthens live ranges, so spill code can
  Off.CleanupIR = false;         // grow the post-allocation count.
  driver::CompileResult ROn = driver::compileProgram(P, On);
  driver::CompileResult ROff = driver::compileProgram(P, Off);
  ASSERT_TRUE(ROn.ok());
  ASSERT_TRUE(ROff.ok());
  EXPECT_EQ(interpret(ROn.M).Checksum, Ref.Checksum);
  EXPECT_EQ(interpret(ROff.M).Checksum, Ref.Checksum);
  EXPECT_LE(instrCount(ROn.M), instrCount(ROff.M));
}

TEST(Cleanup, HoistsLoopInvariants) {
  // The fp constant and the invariant product move to the preheader; the
  // loop body keeps only the varying work.
  Module M = lowerOk(R"(
array A[64] output;
var c = 3.0;
for (i = 0; i < 64; i += 1) {
  A[i] = i * (c * c + 1.5);
}
)");
  uint64_t Ref = interpret(M).Checksum;
  CleanupStats S = cleanupModule(M);
  EXPECT_GT(S.Hoisted, 0);
  EXPECT_EQ(ir::verify(M), "");
  EXPECT_EQ(interpret(M).Checksum, Ref);
  // No FLdI or FMul of invariants may remain in a block that branches back
  // to itself (the loop body).
  for (const BasicBlock &B : M.Fn.Blocks) {
    const Instr &T = B.Instrs.back();
    bool SelfLoop = T.Op == Opcode::Br && T.Target0 == B.Id;
    if (!SelfLoop)
      continue;
    for (const Instr &I : B.Instrs)
      EXPECT_NE(I.Op, Opcode::FLdI)
          << "invariant constant left in the loop body";
  }
}

TEST(Cleanup, DoesNotHoistLoopVaryingOrZeroTripUnsafe) {
  // s is read after a loop that may run zero times; the in-loop def of s
  // must not be hoisted over the guard.
  Module M = lowerOk(R"(
array A[8] output;
var s = 1.0;
var n int = 0;
for (i = 0; i < n; i += 1) { s = 2.0; A[i] = s; }
A[7] = s;
)");
  uint64_t Ref = interpret(M).Checksum;
  cleanupModule(M);
  EXPECT_EQ(ir::verify(M), "");
  EXPECT_EQ(interpret(M).Checksum, Ref) << "zero-trip value of s clobbered";
}
