//===- tests/support_test.cpp - Unit tests for the support library --------===//

#include "support/BitVec.h"
#include "support/RNG.h"
#include "support/Str.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

using namespace bsched;

TEST(Str, FmtDouble) {
  EXPECT_EQ(fmtDouble(1.234, 2), "1.23");
  EXPECT_EQ(fmtDouble(1.0, 2), "1.00");
  EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(Str, FmtPercent) {
  EXPECT_EQ(fmtPercent(0.233), "23.3%");
  EXPECT_EQ(fmtPercent(-0.121), "-12.1%");
  EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Str, FmtInt) {
  EXPECT_EQ(fmtInt(0), "0");
  EXPECT_EQ(fmtInt(999), "999");
  EXPECT_EQ(fmtInt(1000), "1,000");
  EXPECT_EQ(fmtInt(1234567), "1,234,567");
  EXPECT_EQ(fmtInt(-1234567), "-1,234,567");
}

TEST(Str, FmtMillions) {
  EXPECT_EQ(fmtMillions(17844800000ull), "17844.8");
  EXPECT_EQ(fmtMillions(500000), "0.5");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(startsWith("hello", "he"));
  EXPECT_TRUE(startsWith("hello", ""));
  EXPECT_FALSE(startsWith("he", "hello"));
}

TEST(Table, RendersAlignedColumns) {
  Table T({"Name", "Value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "2"});
  std::string Out = T.render();
  // Header present, all rows present, rows have equal width.
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("long-name"), std::string::npos);
  size_t FirstNL = Out.find('\n');
  ASSERT_NE(FirstNL, std::string::npos);
  // All lines equal length (aligned table).
  size_t Width = FirstNL;
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t NL = Out.find('\n', Pos);
    ASSERT_NE(NL, std::string::npos);
    EXPECT_EQ(NL - Pos, Width);
    Pos = NL + 1;
  }
}

TEST(Table, ShortRowsArePadded) {
  Table T({"A", "B", "C"});
  T.addRow({"x"});
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_NE(T.render().find('x'), std::string::npos);
}

TEST(Table, CaptionIsFirstLine) {
  Table T({"A"});
  T.setCaption("Table 1: caption");
  EXPECT_TRUE(startsWith(T.render(), "Table 1: caption\n"));
}

TEST(RNG, Deterministic) {
  RNG A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RNG, DoubleInUnitInterval) {
  RNG R(7);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, BoolProbabilityRoughlyMatches) {
  RNG R(11);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    Hits += R.nextBool(0.3);
  double P = static_cast<double>(Hits) / N;
  EXPECT_NEAR(P, 0.3, 0.02);
}

TEST(RNG, NextBelowInRange) {
  RNG R(3);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RNG, NextBelowIsUnbiased) {
  // Regression for the classic modulo bias. With Bound = 3 * 2^62, a bare
  // `next() % Bound` maps the top quarter of the 64-bit range onto
  // [0, 2^62) a second time, so ~1/2 of all samples land below 2^62 where a
  // uniform draw puts only 1/3 there. Rejection sampling must hold 1/3.
  RNG R(7);
  const uint64_t Bound = 3ull << 62;
  const uint64_t Third = 1ull << 62;
  const int N = 3000;
  int Low = 0;
  for (int I = 0; I != N; ++I) {
    uint64_t X = R.nextBelow(Bound);
    ASSERT_LT(X, Bound);
    Low += X < Third;
  }
  // Uniform expectation 1000 (sigma ~26); the biased scheme would give
  // ~1500. The window is ~5 sigma wide on a deterministic stream.
  EXPECT_GT(Low, 870);
  EXPECT_LT(Low, 1130);
}

TEST(BitVec, SetTestReset) {
  BitVec V(130);
  EXPECT_FALSE(V.any());
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 2u);
}

TEST(BitVec, OrSubtractAnd) {
  BitVec A(100), B(100);
  A.set(3);
  B.set(3);
  B.set(70);
  EXPECT_TRUE(A.orWith(B));
  EXPECT_TRUE(A.test(70));
  EXPECT_FALSE(A.orWith(B)); // No change second time.
  A.subtract(B);
  EXPECT_FALSE(A.any());
  A.set(5);
  A.set(6);
  B.clear();
  B.set(6);
  A.andWith(B);
  EXPECT_FALSE(A.test(5));
  EXPECT_TRUE(A.test(6));
}

TEST(BitVec, ForEachVisitsInOrder) {
  BitVec V(200);
  V.set(1);
  V.set(63);
  V.set(64);
  V.set(199);
  std::vector<unsigned> Seen;
  V.forEach([&](unsigned I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{1, 63, 64, 199}));
}

TEST(BitVec, Equality) {
  BitVec A(10), B(10);
  EXPECT_TRUE(A == B);
  A.set(9);
  EXPECT_FALSE(A == B);
  B.set(9);
  EXPECT_TRUE(A == B);
}

//===----------------------------------------------------------------------===//
// ThreadPool chunked dispatch
//===----------------------------------------------------------------------===//

// Every index is executed exactly once, for both chunk policies, across
// worker counts that undershoot, match, and oversubscribe the index range.
TEST(ThreadPoolChunked, EveryIndexExactlyOnce) {
  for (ChunkPolicy Policy : {ChunkPolicy::Static, ChunkPolicy::Guided}) {
    for (unsigned Threads : {1u, 2u, 3u, 8u}) {
      for (size_t Count : {size_t(0), size_t(1), size_t(5), size_t(257)}) {
        std::vector<std::atomic<unsigned>> Seen(Count);
        ThreadPool::parallelForChunked(
            Threads, Count, [&](size_t I) { ++Seen[I]; }, Policy);
        for (size_t I = 0; I != Count; ++I)
          EXPECT_EQ(Seen[I].load(), 1u)
              << "policy " << int(Policy) << " threads " << Threads
              << " count " << Count << " index " << I;
      }
    }
  }
}

// Static chunking hands each worker one contiguous slice: with results
// written by index the output is identical to the sequential loop, and the
// slice sizes differ by at most one.
TEST(ThreadPoolChunked, StaticSlicesAreBalanced) {
  constexpr size_t Count = 103;
  constexpr unsigned Threads = 4;
  std::vector<int> Out(Count, -1);
  ThreadPool::parallelForChunked(
      Threads, Count, [&](size_t I) { Out[I] = static_cast<int>(2 * I); },
      ChunkPolicy::Static);
  for (size_t I = 0; I != Count; ++I)
    EXPECT_EQ(Out[I], static_cast<int>(2 * I));
}

// Guided chunking: results written by index are independent of the worker
// count (the determinism contract runAll builds on).
TEST(ThreadPoolChunked, GuidedResultsIndependentOfThreadCount) {
  constexpr size_t Count = 1000;
  auto Run = [&](unsigned Threads) {
    std::vector<uint64_t> Out(Count);
    ThreadPool::parallelForChunked(
        Threads, Count, [&](size_t I) { Out[I] = I * I + 7; },
        ChunkPolicy::Guided);
    return Out;
  };
  std::vector<uint64_t> One = Run(1);
  std::vector<uint64_t> Eight = Run(8);
  EXPECT_EQ(One, Eight);
}
