//===- tests/suite_test.cpp - Suite output byte-identity -------------------===//
//
// The suite runner's determinism contract, tested in-process on two
// representative tables (Table 1 and Table 4, compiled here with their
// standalone main()s suppressed): a table's run() bytes are invariant
//
//  * across thread counts of the warmup fan-out,
//  * across cache tiers — freshly computed, memory-warm, and
//    disk-warm (loaded back from a persistent store), and
//  * across table order (deduplicated jobs shared between tables).
//
// bsched-suite --verify-standalone covers the same property against the
// actual standalone binaries; this test pins it in the ctest matrix where
// ASan/UBSan run.
//
//===----------------------------------------------------------------------===//

#include "Suite.h"

#include "driver/ArtifactStore.h"
#include "driver/ProfileCache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include <unistd.h>

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

BSCHED_SUITE_DECLARE(table1_workload)
BSCHED_SUITE_DECLARE(table4_unroll_bs)

namespace {

std::vector<SuiteTable> testTables() {
  return {bsched_suite_table_table1_workload(),
          bsched_suite_table_table4_unroll_bs()};
}

void clearMemoryCaches() {
  clearResultCache();
  clearProfileCache();
}

/// Captures one table's run() output. captureStdout wants a plain function
/// pointer, so the table under capture is passed through a file-scope slot.
const SuiteTable *Current = nullptr;
std::string captureTable(const SuiteTable &T) {
  Current = &T;
  std::string Out;
  int Rc = captureStdout([] { return Current->Run(); }, Out);
  EXPECT_EQ(Rc, 0) << T.Name;
  EXPECT_FALSE(Out.empty()) << T.Name;
  return Out;
}

class SuiteTest : public ::testing::Test {
protected:
  void SetUp() override {
    setArtifactStoreDir("");
    clearMemoryCaches();
  }
  void TearDown() override {
    setArtifactStoreDir("");
    clearMemoryCaches();
    if (!Dir.empty()) {
      std::string Cmd = "rm -rf '" + Dir + "'";
      ASSERT_EQ(std::system(Cmd.c_str()), 0);
    }
  }
  void makeStoreDir() {
    char Template[] = "/tmp/bsched-suite-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
  }
  std::string Dir;
};

TEST_F(SuiteTest, OutputInvariantAcrossThreadCounts) {
  for (const SuiteTable &T : testTables()) {
    runAll(T.Jobs(), 1);
    std::string Seq = captureTable(T);

    clearMemoryCaches();
    runAll(T.Jobs(), 3);
    std::string Par = captureTable(T);
    EXPECT_EQ(Seq, Par) << T.Name
                        << ": output depends on warmup thread count";
  }
}

TEST_F(SuiteTest, OutputInvariantAcrossCacheTiers) {
  makeStoreDir();
  for (const SuiteTable &T : testTables()) {
    // Tier 0: pure compute, no store anywhere.
    setArtifactStoreDir("");
    clearMemoryCaches();
    std::string Computed = captureTable(T);

    // Tier 1: memory-warm (the emitter re-reads what the fan-out cached).
    runAll(T.Jobs(), 2);
    std::string MemoryWarm = captureTable(T);

    // Tier 2: disk-warm — recompute with the store attached (memory caches
    // cleared so the write-back path actually runs), wipe memory, reload.
    setArtifactStoreDir(Dir);
    resetArtifactStoreStats();
    clearMemoryCaches();
    runAll(T.Jobs(), 2);
    ASSERT_GT(artifactStoreStats().Writes, 0u) << T.Name;
    clearMemoryCaches();
    std::string DiskWarm = captureTable(T);
    EXPECT_GT(artifactStoreStats().DiskHits, 0u) << T.Name;

    EXPECT_EQ(Computed, MemoryWarm) << T.Name;
    EXPECT_EQ(Computed, DiskWarm)
        << T.Name << ": disk-tier bytes differ from computed bytes";
  }
}

TEST_F(SuiteTest, TablesShareDedupedJobs) {
  // Table 1's whole grid is a subset of Table 4's unroll-1 column: the
  // suite-level dedup must collapse it to zero extra jobs, and running the
  // tables back to back off one cache must not change either's bytes.
  std::vector<SuiteTable> Tables = testTables();
  std::unordered_set<std::string> Keys;
  for (const driver::ExperimentJob &J : Tables[1].Jobs())
    Keys.insert(resultKey(*J.W, J.Opts, J.Machine));
  size_t Overlap = 0;
  for (const driver::ExperimentJob &J : Tables[0].Jobs())
    Overlap += Keys.count(resultKey(*J.W, J.Opts, J.Machine));
  EXPECT_EQ(Overlap, Tables[0].Jobs().size());

  // Solo runs, fresh cache each.
  clearMemoryCaches();
  runAll(Tables[0].Jobs(), 2);
  std::string Solo1 = captureTable(Tables[0]);
  clearMemoryCaches();
  runAll(Tables[1].Jobs(), 2);
  std::string Solo4 = captureTable(Tables[1]);

  // Suite-style run: deduped union of both grids, one shared cache.
  clearMemoryCaches();
  std::vector<driver::ExperimentJob> Union;
  std::unordered_set<std::string> Seen;
  for (const SuiteTable &T : Tables)
    for (driver::ExperimentJob J : T.Jobs())
      if (Seen.insert(resultKey(*J.W, J.Opts, J.Machine)).second)
        Union.push_back(J);
  runAll(Union, 2);
  EXPECT_EQ(captureTable(Tables[0]), Solo1);
  EXPECT_EQ(captureTable(Tables[1]), Solo4);
}

} // namespace
