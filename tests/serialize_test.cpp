//===- tests/serialize_test.cpp - Artifact serialization round-trips -------===//
//
// The persistent artifact store is only safe if deserialization is an exact
// inverse of serialization. This file pins that down at three levels:
//
//  * ByteWriter/ByteReader primitives: every scalar and string round-trips
//    bit-exact, truncated input fails sticky, and length prefixes are
//    validated against the remaining bytes before any allocation.
//  * Whole-artifact codecs: fully-populated SimResult / InterpResult /
//    Module / CompileResult / RunResult values survive encode→decode with
//    every field equal, and the decoder consumes exactly the bytes the
//    encoder produced.
//  * Golden reproduction: a CompileResult decoded from its encoding hashes
//    to the same checked-in golden schedule hash as the live compile, and a
//    decoded SimResult reproduces the pinned golden sim-stats hash — the
//    disk tier can never ship different bytes than a recompute.
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"

#include "driver/Artifacts.h"
#include "driver/Experiment.h"
#include "ir/Interp.h"
#include "support/Serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

TEST(ByteStream, PrimitivesRoundTrip) {
  ByteWriter W;
  W.u8(0);
  W.u8(0xff);
  W.u32(0);
  W.u32(0xdeadbeefu);
  W.u64(0);
  W.u64(~0ull);
  W.i64(-1);
  W.i64(INT64_MIN);
  W.i64(INT64_MAX);
  W.b(true);
  W.b(false);
  W.d(0.0);
  W.d(-1.5e300);
  W.d(3.141592653589793);
  W.str("");
  W.str(std::string("nul\0byte", 8));
  W.str("plain");

  ByteReader R(W.buffer());
  EXPECT_EQ(R.u8(), 0u);
  EXPECT_EQ(R.u8(), 0xffu);
  EXPECT_EQ(R.u32(), 0u);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0u);
  EXPECT_EQ(R.u64(), ~0ull);
  EXPECT_EQ(R.i64(), -1);
  EXPECT_EQ(R.i64(), INT64_MIN);
  EXPECT_EQ(R.i64(), INT64_MAX);
  EXPECT_TRUE(R.b());
  EXPECT_FALSE(R.b());
  EXPECT_EQ(R.d(), 0.0);
  EXPECT_EQ(R.d(), -1.5e300);
  EXPECT_EQ(R.d(), 3.141592653589793);
  EXPECT_EQ(R.str(), "");
  EXPECT_EQ(R.str(), std::string("nul\0byte", 8));
  EXPECT_EQ(R.str(), "plain");
  EXPECT_TRUE(R.atEnd());
  EXPECT_TRUE(R.ok());
}

TEST(ByteStream, TruncationFailsSticky) {
  ByteWriter W;
  W.u64(42);
  std::string Buf = W.buffer().substr(0, 5); // cut mid-word
  ByteReader R(Buf);
  EXPECT_EQ(R.u64(), 0u); // short read yields the zero value...
  EXPECT_FALSE(R.ok());   // ...and trips the failed state.
  // Sticky: every later read also fails, and remaining() was zeroed.
  EXPECT_EQ(R.u8(), 0u);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(ByteStream, StringLengthValidatedBeforeAllocation) {
  // A length prefix claiming far more bytes than the buffer holds must fail
  // cleanly (no attempt to allocate or read past the end).
  ByteWriter W;
  W.u64(0x7fffffffffffull); // str length prefix, no payload
  ByteReader R(W.buffer());
  EXPECT_EQ(R.str(), "");
  EXPECT_FALSE(R.ok());
}

TEST(ByteStream, CanHoldRejectsAbsurdCounts) {
  ByteWriter W;
  W.u32(3);
  ByteReader R(W.buffer());
  uint32_t N = R.u32();
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.canHold(N, 8)); // 3 elements x 8 bytes > 0 remaining
  EXPECT_FALSE(R.ok());          // canHold failure is sticky too
  ByteReader R2(W.buffer());
  EXPECT_TRUE(R2.canHold(0, 1024)); // zero elements always fit
}

//===----------------------------------------------------------------------===//
// Whole-artifact codecs
//===----------------------------------------------------------------------===//

sim::SimResult denseSimResult() {
  sim::SimResult S;
  S.Finished = true;
  S.Error = "not an error, just bytes";
  S.Checksum = 0x0123456789abcdefull;
  S.Cycles = 1234567;
  S.Counts.ShortInt = 11;
  S.Counts.LongInt = 12;
  S.Counts.ShortFp = 13;
  S.Counts.LongFp = 14;
  S.Counts.Loads = 15;
  S.Counts.Stores = 16;
  S.Counts.Branches = 17;
  S.Counts.Spills = 18;
  S.Counts.Restores = 19;
  S.LoadInterlockCycles = 21;
  S.FixedInterlockCycles = 22;
  S.ICacheStallCycles = 23;
  S.ITlbStallCycles = 24;
  S.DTlbStallCycles = 25;
  S.BranchPenaltyCycles = 26;
  S.MshrStallCycles = 27;
  S.WriteBufferStallCycles = 28;
  S.L1D = {31, 32};
  S.L2 = {33, 34};
  S.L3 = {35, 36};
  S.L1I = {37, 38};
  S.DTlbMisses = 41;
  S.ITlbMisses = 42;
  S.BranchMispredicts = 43;
  return S;
}

TEST(ArtifactRoundTrip, SimResultEveryField) {
  sim::SimResult S = denseSimResult();
  ByteWriter W;
  encode(W, S);
  ByteReader R(W.buffer());
  sim::SimResult D;
  D.Cycles = 777; // decoder must reset, not merge
  ASSERT_TRUE(decode(R, D));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(D.Finished, S.Finished);
  EXPECT_EQ(D.Error, S.Error);
  EXPECT_EQ(D.Checksum, S.Checksum);
  EXPECT_EQ(D.Cycles, S.Cycles);
  EXPECT_EQ(D.Counts.ShortInt, S.Counts.ShortInt);
  EXPECT_EQ(D.Counts.LongInt, S.Counts.LongInt);
  EXPECT_EQ(D.Counts.ShortFp, S.Counts.ShortFp);
  EXPECT_EQ(D.Counts.LongFp, S.Counts.LongFp);
  EXPECT_EQ(D.Counts.Loads, S.Counts.Loads);
  EXPECT_EQ(D.Counts.Stores, S.Counts.Stores);
  EXPECT_EQ(D.Counts.Branches, S.Counts.Branches);
  EXPECT_EQ(D.Counts.Spills, S.Counts.Spills);
  EXPECT_EQ(D.Counts.Restores, S.Counts.Restores);
  EXPECT_EQ(D.LoadInterlockCycles, S.LoadInterlockCycles);
  EXPECT_EQ(D.FixedInterlockCycles, S.FixedInterlockCycles);
  EXPECT_EQ(D.ICacheStallCycles, S.ICacheStallCycles);
  EXPECT_EQ(D.ITlbStallCycles, S.ITlbStallCycles);
  EXPECT_EQ(D.DTlbStallCycles, S.DTlbStallCycles);
  EXPECT_EQ(D.BranchPenaltyCycles, S.BranchPenaltyCycles);
  EXPECT_EQ(D.MshrStallCycles, S.MshrStallCycles);
  EXPECT_EQ(D.WriteBufferStallCycles, S.WriteBufferStallCycles);
  EXPECT_EQ(D.L1D.Accesses, S.L1D.Accesses);
  EXPECT_EQ(D.L1D.Misses, S.L1D.Misses);
  EXPECT_EQ(D.L2.Accesses, S.L2.Accesses);
  EXPECT_EQ(D.L2.Misses, S.L2.Misses);
  EXPECT_EQ(D.L3.Accesses, S.L3.Accesses);
  EXPECT_EQ(D.L3.Misses, S.L3.Misses);
  EXPECT_EQ(D.L1I.Accesses, S.L1I.Accesses);
  EXPECT_EQ(D.L1I.Misses, S.L1I.Misses);
  EXPECT_EQ(D.DTlbMisses, S.DTlbMisses);
  EXPECT_EQ(D.ITlbMisses, S.ITlbMisses);
  EXPECT_EQ(D.BranchMispredicts, S.BranchMispredicts);
}

TEST(ArtifactRoundTrip, InterpResultEveryField) {
  ir::InterpResult P;
  P.Finished = true;
  P.DynInstrs = 987654321;
  P.Checksum = 0xfeedfacecafebeefull;
  P.BlockCounts = {0, 3, 1u << 30, 7};
  P.EdgeCounts.push_back({0, 17});
  P.EdgeCounts.push_back({3, 4096});
  ByteWriter W;
  encode(W, P);
  ByteReader R(W.buffer());
  ir::InterpResult D;
  ASSERT_TRUE(decode(R, D));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(D.Finished, P.Finished);
  EXPECT_EQ(D.DynInstrs, P.DynInstrs);
  EXPECT_EQ(D.Checksum, P.Checksum);
  EXPECT_EQ(D.BlockCounts, P.BlockCounts);
  EXPECT_EQ(D.EdgeCounts, P.EdgeCounts);
}

TEST(ArtifactRoundTrip, CompileResultEveryWorkload) {
  // Full pipeline (regalloc + verify on) so module text, per-pass stats,
  // and diagnostics are all populated; trace scheduling exercises the
  // Formed / compensation payloads.
  std::vector<CompileOptions> Configs(2);
  Configs[1].UnrollFactor = 4;
  Configs[1].TraceScheduling = true;
  for (const CompileOptions &Opts : Configs) {
    for (const Workload &Wl : workloads()) {
      lang::Program P = parseWorkload(Wl);
      CompileResult C = compileProgram(P, Opts);
      ASSERT_TRUE(C.ok()) << Wl.Name << ": " << C.Error;

      ByteWriter W;
      encode(W, C);
      ByteReader R(W.buffer());
      CompileResult D;
      ASSERT_TRUE(decode(R, D)) << Wl.Name << " [" << Opts.tag() << "]";
      EXPECT_TRUE(R.atEnd()) << Wl.Name;

      EXPECT_EQ(D.Error, C.Error);
      EXPECT_EQ(ir::printFunction(D.M.Fn), ir::printFunction(C.M.Fn))
          << Wl.Name << " [" << Opts.tag() << "]: module text changed";
      EXPECT_EQ(D.M.MemorySize, C.M.MemorySize);
      EXPECT_EQ(D.M.SpillArrayId, C.M.SpillArrayId);
      EXPECT_EQ(D.M.Arrays.size(), C.M.Arrays.size());
      EXPECT_EQ(D.M.Fn.RegClasses, C.M.Fn.RegClasses);
      EXPECT_EQ(D.Unroll.LoopsUnrolled, C.Unroll.LoopsUnrolled);
      EXPECT_EQ(D.Cleanup.DeadRemoved, C.Cleanup.DeadRemoved);
      EXPECT_EQ(D.Trace.Traces, C.Trace.Traces);
      EXPECT_EQ(D.Trace.CompensationInstrs, C.Trace.CompensationInstrs);
      EXPECT_EQ(D.Trace.Formed, C.Trace.Formed);
      EXPECT_EQ(D.RegAlloc.SpilledVRegs, C.RegAlloc.SpilledVRegs);
      EXPECT_EQ(D.RegAlloc.IntRegsUsed, C.RegAlloc.IntRegsUsed);
      EXPECT_EQ(D.Exact.BlocksAttempted, C.Exact.BlocksAttempted);
      EXPECT_EQ(D.VerifyDiags.size(), C.VerifyDiags.size());

      // The decoded module is a live module: the interpreter runs it to the
      // same checksum as the original.
      ir::InterpResult IC = ir::interpret(C.M);
      ir::InterpResult ID = ir::interpret(D.M);
      EXPECT_EQ(ID.Finished, IC.Finished) << Wl.Name;
      EXPECT_EQ(ID.Checksum, IC.Checksum) << Wl.Name;
      EXPECT_EQ(ID.DynInstrs, IC.DynInstrs) << Wl.Name;
    }
  }
}

TEST(ArtifactRoundTrip, RunResultEndToEnd) {
  const Workload &Wl = workloads().front();
  CompileOptions Opts;
  Opts.UnrollFactor = 4;
  RunResult R = runWorkload(Wl, Opts);
  ASSERT_TRUE(R.ok()) << R.Error;

  ByteWriter W;
  encode(W, R);
  ByteReader Rd(W.buffer());
  RunResult D;
  ASSERT_TRUE(decode(Rd, D));
  EXPECT_TRUE(Rd.atEnd());
  EXPECT_EQ(D.Error, R.Error);
  EXPECT_EQ(D.Sim.Cycles, R.Sim.Cycles);
  EXPECT_EQ(D.Sim.Checksum, R.Sim.Checksum);
  EXPECT_EQ(D.Sim.LoadInterlockCycles, R.Sim.LoadInterlockCycles);
  EXPECT_EQ(D.Unroll.LoopsUnrolled, R.Unroll.LoopsUnrolled);
  EXPECT_EQ(D.RegAlloc.SpillStores, R.RegAlloc.SpillStores);
  EXPECT_EQ(D.Trace.Traces, R.Trace.Traces);
}

TEST(ArtifactRoundTrip, TruncatedModuleFailsCleanly) {
  const Workload &Wl = workloads().front();
  lang::Program P = parseWorkload(Wl);
  CompileResult C = compileProgram(P, {});
  ASSERT_TRUE(C.ok());
  ByteWriter W;
  encode(W, C);
  const std::string &Full = W.buffer();
  // Every strict prefix must fail (or, for the empty-tail corner, at least
  // never produce a module that differs silently) — step through a spread
  // of cut points rather than all of them to keep the test fast.
  for (size_t Cut = 0; Cut < Full.size(); Cut += 97) {
    std::string Buf = Full.substr(0, Cut);
    ByteReader R(Buf);
    CompileResult D;
    EXPECT_FALSE(decode(R, D) && R.atEnd()) << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Golden reproduction through the codec
//===----------------------------------------------------------------------===//

uint64_t strFnv(const std::string &S) { return fnv1a(S); }

/// Mirrors golden_schedule_test's configuration list; the golden hashes are
/// keyed by CompileOptions::tag(), so the decoded artifacts must reproduce
/// them under exactly these configurations.
std::vector<CompileOptions> goldenConfigs() {
  std::vector<CompileOptions> Cs;
  auto Base = [] {
    CompileOptions O;
    O.StopBeforeRegAlloc = true;
    O.VerifyPasses = false;
    return O;
  };
  for (sched::SchedulerKind K :
       {sched::SchedulerKind::Balanced, sched::SchedulerKind::Traditional,
        sched::SchedulerKind::Hybrid}) {
    CompileOptions O = Base();
    O.Scheduler = K;
    Cs.push_back(O);
  }
  for (sched::SchedulerKind K :
       {sched::SchedulerKind::Balanced, sched::SchedulerKind::Traditional}) {
    for (bool Est : {false, true}) {
      CompileOptions O = Base();
      O.Scheduler = K;
      O.UnrollFactor = 8;
      O.TraceScheduling = true;
      O.UseEstimatedProfile = Est;
      Cs.push_back(O);
    }
  }
  return Cs;
}

struct GoldenScheduleRow {
  const char *Config;
  const char *Workload;
  uint64_t Hash;
};

const GoldenScheduleRow GoldenSchedules[] = {
#include "golden_schedules.inc"
    {"", "", 0},
};

uint64_t findGoldenSchedule(const std::string &Config,
                            const std::string &Workload) {
  for (const GoldenScheduleRow &R : GoldenSchedules)
    if (Config == R.Config && Workload == R.Workload)
      return R.Hash;
  return 0;
}

TEST(GoldenReproduction, DecodedCompileResultsMatchScheduleGoldens) {
  size_t Checked = 0;
  for (const CompileOptions &Opts : goldenConfigs()) {
    for (const Workload &Wl : workloads()) {
      lang::Program P = parseWorkload(Wl);
      CompileResult C = compileProgram(P, Opts);
      ASSERT_TRUE(C.ok()) << Wl.Name << ": " << C.Error;

      ByteWriter W;
      encode(W, C);
      ByteReader R(W.buffer());
      CompileResult D;
      ASSERT_TRUE(decode(R, D)) << Wl.Name << " [" << Opts.tag() << "]";

      uint64_t Golden = findGoldenSchedule(Opts.tag(), Wl.Name);
      ASSERT_NE(Golden, 0u)
          << Wl.Name << " [" << Opts.tag() << "]: no golden entry";
      EXPECT_EQ(strFnv(ir::printFunction(D.M.Fn)), Golden)
          << Wl.Name << " [" << Opts.tag()
          << "]: decoded artifact hashes differently than the live compile";
      ++Checked;
    }
  }
  // 7 configs x 17 workloads: the full pinned matrix went through the codec.
  EXPECT_EQ(Checked, goldenConfigs().size() * workloads().size());
}

/// Identical to golden_sim_test's dumpResult — the golden sim hashes are
/// over this exact string.
std::string dumpResult(const sim::SimResult &R) {
  std::string S;
  auto Add = [&S](uint64_t V) {
    S += std::to_string(V);
    S += ',';
  };
  Add(R.Finished ? 1 : 0);
  Add(R.Checksum);
  Add(R.Cycles);
  Add(R.Counts.ShortInt);
  Add(R.Counts.LongInt);
  Add(R.Counts.ShortFp);
  Add(R.Counts.LongFp);
  Add(R.Counts.Loads);
  Add(R.Counts.Stores);
  Add(R.Counts.Branches);
  Add(R.Counts.Spills);
  Add(R.Counts.Restores);
  Add(R.LoadInterlockCycles);
  Add(R.FixedInterlockCycles);
  Add(R.ICacheStallCycles);
  Add(R.ITlbStallCycles);
  Add(R.DTlbStallCycles);
  Add(R.BranchPenaltyCycles);
  Add(R.MshrStallCycles);
  Add(R.WriteBufferStallCycles);
  Add(R.L1D.Accesses);
  Add(R.L1D.Misses);
  Add(R.L2.Accesses);
  Add(R.L2.Misses);
  Add(R.L3.Accesses);
  Add(R.L3.Misses);
  Add(R.L1I.Accesses);
  Add(R.L1I.Misses);
  Add(R.DTlbMisses);
  Add(R.ITlbMisses);
  Add(R.BranchMispredicts);
  return S;
}

struct GoldenSimRow {
  const char *Machine;
  const char *Workload;
  uint64_t Hash;
};

const GoldenSimRow GoldenSims[] = {
#include "golden_sim_stats.inc"
    {"", "", 0},
};

uint64_t findGoldenSim(const std::string &Machine,
                       const std::string &Workload) {
  for (const GoldenSimRow &R : GoldenSims)
    if (Machine == R.Machine && Workload == R.Workload)
      return R.Hash;
  return 0;
}

TEST(GoldenReproduction, DecodedSimResultsMatchSimGoldens) {
  CompileOptions Opts;
  Opts.UnrollFactor = 4;
  Opts.VerifyPasses = false;
  std::vector<test::MachinePoint> Machines = test::goldenSimMachines();
  size_t Checked = 0;
  for (const Workload &Wl : workloads()) {
    lang::Program P = parseWorkload(Wl);
    CompileResult C = compileProgram(P, Opts);
    ASSERT_TRUE(C.ok()) << Wl.Name << ": " << C.Error;
    for (const test::MachinePoint &M : Machines) {
      sim::SimResult S = sim::simulate(C.M, M.Config);
      ASSERT_TRUE(S.ok()) << Wl.Name << " [" << M.Tag << "]: " << S.Error;

      ByteWriter W;
      encode(W, S);
      ByteReader R(W.buffer());
      sim::SimResult D;
      ASSERT_TRUE(decode(R, D)) << Wl.Name << " [" << M.Tag << "]";
      EXPECT_TRUE(R.atEnd());

      uint64_t Golden = findGoldenSim(M.Tag, Wl.Name);
      ASSERT_NE(Golden, 0u)
          << Wl.Name << " [" << M.Tag << "]: no golden entry";
      EXPECT_EQ(strFnv(dumpResult(D)), Golden)
          << Wl.Name << " [" << M.Tag
          << "]: decoded sim stats hash differently than the live run";
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, workloads().size() * Machines.size());
}

} // namespace
