//===- tests/weights_incremental_test.cpp - Incremental balanced weights ---===//
//
// Pins sched::BalancedWeightsBuilder against the one-shot balancedWeights:
// the builder's contract is that weights() is bit-identical to a single
// from-scratch pass over the final region, no matter how the region was
// covered by extend() steps. Two layers:
//
//  * Hand regions: small IR blocks with known dependence shapes (independent
//    loads, chained loads, mixed fixed-latency work), extended at every
//    prefix granularity — including one node at a time — under several
//    BalanceOptions, with one builder instance recycled across all of them.
//  * Pipeline sweep: every trace-scheduling configuration of the canonical
//    differential list, over every workload. Each formed trace's region is
//    reassembled from the compiled module (CompileResult.Trace.Formed) with
//    the trace scheduler's control edges, and the builder must reproduce the
//    one-shot weights when extending block by block, exactly as the trace
//    compaction path does.
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"
#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "ir/IRParser.h"
#include "sched/DepDAG.h"
#include "sched/Schedule.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;

namespace {

/// Requires the builder, covering \p G through the given extension steps
/// (each entry an UpTo value; a final full extend is always appended), to
/// reproduce the one-shot balancedWeights bit for bit. \p WB is passed in so
/// callers can exercise storage recycling across begin() cycles.
void expectBuilderMatchesOneShot(BalancedWeightsBuilder &WB, const DepDAG &G,
                                 const std::vector<const Instr *> &Instrs,
                                 const std::vector<unsigned> &Steps,
                                 const BalanceOptions &Opts,
                                 const std::string &What) {
  std::vector<double> OneShot = balancedWeights(G, Instrs, Opts);
  WB.begin(Opts);
  for (unsigned UpTo : Steps)
    WB.extend(G, Instrs, UpTo);
  WB.extend(G, Instrs);
  std::vector<double> Incremental = WB.weights(Instrs);
  ASSERT_EQ(Incremental.size(), OneShot.size()) << What;
  for (size_t I = 0; I != OneShot.size(); ++I)
    EXPECT_EQ(Incremental[I], OneShot[I])
        << What << ": weight of node " << I
        << " diverged from the one-shot computation";
}

/// The BalanceOptions variants worth sweeping: the default, a tight weight
/// cap (changes the padding-credit saturation), hit annotations ignored, and
/// fixed-op balancing on (widens the candidate set beyond loads).
std::vector<std::pair<const char *, BalanceOptions>> optionVariants() {
  std::vector<std::pair<const char *, BalanceOptions>> Vs;
  Vs.push_back({"default", BalanceOptions{}});
  BalanceOptions Cap;
  Cap.WeightCap = 6.0;
  Vs.push_back({"cap6", Cap});
  BalanceOptions NoHits;
  NoHits.RespectHitAnnotations = false;
  Vs.push_back({"nohits", NoHits});
  BalanceOptions Fixed;
  Fixed.BalanceFixedOps = true;
  Vs.push_back({"fixedops", Fixed});
  return Vs;
}

Module parseIR(const char *Text) {
  ParseIRResult R = parseModule(Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

/// Every prefix-step schedule worth testing for a region of \p N nodes:
/// one node at a time, every 2nd/3rd node, a single midpoint split, and the
/// degenerate no-step case (one full extend).
std::vector<std::vector<unsigned>> stepSchedules(unsigned N) {
  std::vector<std::vector<unsigned>> All;
  for (unsigned K : {1u, 2u, 3u}) {
    std::vector<unsigned> Steps;
    for (unsigned UpTo = K; UpTo < N; UpTo += K)
      Steps.push_back(UpTo);
    All.push_back(std::move(Steps));
  }
  All.push_back({N / 2});
  All.push_back({});
  return All;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hand regions
//===----------------------------------------------------------------------===//

/// Figure-1-style shapes: a fan of independent loads sharing padders, a
/// dependent load chain (components split the credit), and fixed-latency
/// floating-point work interleaved between them. Every prefix granularity of
/// every shape, under every option variant, through one recycled builder.
TEST(WeightsIncremental, HandRegionsEveryPrefixGranularity) {
  const char *Shapes[] = {
      // Independent loads feeding one reduction: maximal sharing.
      R"(
array A 64
func fan
b0:
  ldi v1, 0
  fld v2, 0(v1)
  fld v3, 8(v1)
  fld v4, 16(v1)
  fld v5, 24(v1)
  fadd v6, v2, v3
  fadd v7, v4, v5
  fadd v8, v6, v7
  fst v8, 32(v1)
  ret
)",
      // A chained-load spine with side work: related loads split credit.
      R"(
array A 64
func chain
b0:
  ldi v1, 0
  ld v2, 0(v1)
  ld v3, 0(v2)
  ld v4, 8(v3)
  itof v5, v4
  fmul v6, v5, v5
  fadd v7, v6, v5
  fst v7, 16(v1)
  add v8, v2, #4
  st v8, 24(v1)
  ret
)",
      // Mixed: two independent chains plus fixed-latency dividers, the shape
      // where BalanceFixedOps changes the candidate set.
      R"(
array A 128
func mixed
b0:
  ldi v1, 0
  fld v2, 0(v1)
  fld v3, 8(v1)
  fdiv v4, v2, v3
  fld v5, 16(v1)
  fld v6, 24(v1)
  fmul v7, v5, v6
  fadd v8, v4, v7
  fld v9, 32(v1)
  fadd v10, v8, v9
  fst v10, 40(v1)
  ret
)",
  };

  BalancedWeightsBuilder WB; // one instance across everything: recycling.
  for (const char *Text : Shapes) {
    Module M = parseIR(Text);
    const BasicBlock &B = M.Fn.Blocks[0];
    std::vector<const Instr *> Ptrs;
    for (const Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    for (const auto &[Tag, Opts] : optionVariants())
      for (const std::vector<unsigned> &Steps :
           stepSchedules(static_cast<unsigned>(Ptrs.size())))
        expectBuilderMatchesOneShot(
            WB, G, Ptrs, Steps, Opts,
            std::string(M.Fn.Name) + " [" + Tag + ", " +
                std::to_string(Steps.size()) + " steps]");
  }
}

/// Repeating an extend with the same UpTo (or one that covers nothing new)
/// must be a no-op: the trace scheduler's boundary list can contain a final
/// boundary equal to the region size.
TEST(WeightsIncremental, RedundantExtendsAreNoOps) {
  Module M = parseIR(R"(
array A 64
func redundant
b0:
  ldi v1, 0
  fld v2, 0(v1)
  fld v3, 8(v1)
  fadd v4, v2, v3
  fst v4, 16(v1)
  ret
)");
  std::vector<const Instr *> Ptrs;
  for (const Instr &I : M.Fn.Blocks[0].Instrs)
    Ptrs.push_back(&I);
  DepDAG G = buildDepDAG(Ptrs);
  addBlockControlEdges(G, Ptrs);
  unsigned N = static_cast<unsigned>(Ptrs.size());
  BalancedWeightsBuilder WB;
  // Each boundary repeated, plus a full-size step before the implicit final
  // extend — the worst redundancy the trace path can produce.
  expectBuilderMatchesOneShot(WB, G, Ptrs, {2, 2, 4, 4, N, N}, {},
                              "redundant extends");
}

//===----------------------------------------------------------------------===//
// Pipeline sweep over the workload suite
//===----------------------------------------------------------------------===//

/// Reassembles each formed trace's scheduling region from the compiled
/// module and checks builder-vs-one-shot equality with the trace
/// scheduler's own extension schedule (one step per block boundary).
TEST(WeightsIncremental, WorkloadTraceSweep) {
  int RegionsChecked = 0;
  BalancedWeightsBuilder WB;
  for (const driver::CompileOptions &Base : test::fuzzConfigs()) {
    if (!Base.TraceScheduling)
      continue;
    driver::CompileOptions Opts = Base;
    // Virtual-register code is what the trace compaction actually weighed;
    // stopping before regalloc keeps the reassembled regions closest to it.
    Opts.StopBeforeRegAlloc = true;
    for (const driver::Workload &W : driver::workloads()) {
      lang::Program P = driver::parseWorkload(W);
      driver::CompileResult R = driver::compileProgram(P, Opts);
      ASSERT_TRUE(R.ok()) << W.Name << " [" << Opts.tag() << "]: " << R.Error;
      const Function &F = R.M.Fn;
      for (const trace::Trace &T : R.Trace.Formed) {
        // Region = concatenated trace blocks, exactly as scheduleTrace
        // assembles it; TermNode marks each block's terminator position.
        std::vector<const Instr *> Ptrs;
        std::vector<unsigned> TermNode;
        std::vector<int> Home;
        for (size_t Pos = 0; Pos != T.size(); ++Pos) {
          for (const Instr &I : F.Blocks[T[Pos]].Instrs) {
            Home.push_back(static_cast<int>(Pos));
            Ptrs.push_back(&I);
          }
          TermNode.push_back(static_cast<unsigned>(Ptrs.size()) - 1);
        }
        if (Ptrs.size() <= 2)
          continue;
        DepDAG G = buildDepDAG(Ptrs);
        // The trace scheduler's unconditional control edges: branches keep
        // their order, nothing moves below its home terminator. (The
        // split/join legality edges depend on liveness and profile flow;
        // the builder contract holds for any DAG, so the unconditional
        // subset exercises it on the real region shapes.)
        for (size_t Pos = 1; Pos != T.size(); ++Pos)
          G.addEdge(TermNode[Pos - 1], TermNode[Pos]);
        for (unsigned I = 0; I != Ptrs.size(); ++I)
          G.addEdge(I, TermNode[static_cast<size_t>(Home[I])]);
        std::vector<unsigned> Steps;
        for (size_t Pos = 0; Pos + 1 < TermNode.size(); ++Pos)
          Steps.push_back(TermNode[Pos] + 1);
        expectBuilderMatchesOneShot(
            WB, G, Ptrs, Steps, Opts.Balance,
            std::string(W.Name) + " [" + Opts.tag() + "] trace of " +
                std::to_string(T.size()) + " blocks");
        ++RegionsChecked;
      }
    }
  }
  // The sweep must actually have exercised multi-block extension; a
  // regression that stops forming traces would otherwise pass vacuously.
  EXPECT_GT(RegionsChecked, 100)
      << "trace formation collapsed: too few regions reached the builder";
}
