//===- tests/golden_sim_test.cpp - Simulator statistics goldens ------------===//
//
// Pins the timing simulator's reported statistics down to the bit: every
// workload, simulated under a spread of machine configurations, must hash to
// the checked-in value in golden_sim_stats.inc. The hash covers EVERY
// SimResult field — cycles, the interlock split, each stall source, cache
// and TLB counters, predictor stats, the instruction-mix buckets, and the
// checksum — so any change to simulated behaviour (intended or not) shows up
// as a diff of that file. Together with sim_equivalence_test (Fast ==
// Reference) this is the contract that lets the simulator core be rewritten
// for speed: the goldens pin the numbers, the equivalence test pins the twin.
//
// Regenerating after an intentional model change:
//   BSCHED_GOLDEN_REGEN=1 ./golden_sim_test > tests/golden_sim_stats.inc
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"

#include "driver/Experiment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;
using namespace bsched::sim;

namespace {

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Serializes every SimResult field; the golden hash is over this string,
/// so no statistic can drift unnoticed.
std::string dumpResult(const SimResult &R) {
  std::string S;
  auto Add = [&S](uint64_t V) {
    S += std::to_string(V);
    S += ',';
  };
  Add(R.Finished ? 1 : 0);
  Add(R.Checksum);
  Add(R.Cycles);
  Add(R.Counts.ShortInt);
  Add(R.Counts.LongInt);
  Add(R.Counts.ShortFp);
  Add(R.Counts.LongFp);
  Add(R.Counts.Loads);
  Add(R.Counts.Stores);
  Add(R.Counts.Branches);
  Add(R.Counts.Spills);
  Add(R.Counts.Restores);
  Add(R.LoadInterlockCycles);
  Add(R.FixedInterlockCycles);
  Add(R.ICacheStallCycles);
  Add(R.ITlbStallCycles);
  Add(R.DTlbStallCycles);
  Add(R.BranchPenaltyCycles);
  Add(R.MshrStallCycles);
  Add(R.WriteBufferStallCycles);
  Add(R.L1D.Accesses);
  Add(R.L1D.Misses);
  Add(R.L2.Accesses);
  Add(R.L2.Misses);
  Add(R.L3.Accesses);
  Add(R.L3.Misses);
  Add(R.L1I.Accesses);
  Add(R.L1I.Misses);
  Add(R.DTlbMisses);
  Add(R.ITlbMisses);
  Add(R.BranchMispredicts);
  return S;
}

struct GoldenRow {
  const char *Machine;
  const char *Workload;
  uint64_t Hash;
};

const GoldenRow GoldenTable[] = {
#include "golden_sim_stats.inc"
    {"", "", 0}, // sentinel so the array is never empty pre-regeneration
};

const GoldenRow *findGolden(const std::string &Machine,
                            const std::string &Workload) {
  for (const GoldenRow &R : GoldenTable)
    if (Machine == R.Machine && Workload == R.Workload)
      return &R;
  return nullptr;
}

} // namespace

TEST(GoldenSimStats, EveryWorkloadMatchesPinnedStats) {
  bool Regen = std::getenv("BSCHED_GOLDEN_REGEN") != nullptr;
  CompileOptions Opts;
  Opts.UnrollFactor = 4;  // spills and bigger blocks make the stats richer
  Opts.VerifyPasses = false;
  // The pinned machine list is shared with the fuzzer; the hashes in
  // golden_sim_stats.inc depend on the exact configuration values, so
  // fuzz::goldenMachinePoints() must never change silently.
  std::vector<test::MachinePoint> Machines = test::goldenSimMachines();
  for (const Workload &W : workloads()) {
    lang::Program P = parseWorkload(W);
    CompileResult C = compileProgram(P, Opts);
    ASSERT_TRUE(C.ok()) << W.Name << ": " << C.Error;
    for (const test::MachinePoint &M : Machines) {
      SimResult R = simulate(C.M, M.Config);
      ASSERT_TRUE(R.ok()) << W.Name << " [" << M.Tag << "]: " << R.Error;
      ASSERT_TRUE(R.Finished) << W.Name << " [" << M.Tag << "]";
      uint64_t H = fnv1a(dumpResult(R));
      if (Regen) {
        std::printf("    {\"%s\", \"%s\", 0x%016llxull},\n", M.Tag, W.Name,
                    static_cast<unsigned long long>(H));
        continue;
      }
      const GoldenRow *G = findGolden(M.Tag, W.Name);
      ASSERT_NE(G, nullptr)
          << W.Name << " [" << M.Tag << "]: no golden entry "
          << "(regenerate tests/golden_sim_stats.inc)";
      EXPECT_EQ(G->Hash, H)
          << W.Name << " [" << M.Tag << "]: simulated statistics changed "
          << "(regenerate tests/golden_sim_stats.inc if intended)";
    }
  }
}
