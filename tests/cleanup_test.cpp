//===- tests/cleanup_test.cpp - Incremental liveness & cleanup twins -------===//
//
// Pins the machinery behind the worklist-driven cleanup fixpoint:
//
//  * ir::LivenessTracker's incremental update contract: after any sequence
//    of block edits (marked via markDirty), refresh() must restore exact
//    equality with a fresh computeLiveness over the edited function —
//    checked under randomized deletions, duplications and reorderings of
//    block instructions, in batches, over lowered workload CFGs.
//  * The rowVersion contract the cleanup pass's skip logic relies on: a
//    block whose rowVersion did not move across a refresh has bit-identical
//    LiveIn/LiveOut rows.
//  * The cleanup twins: opt::cleanupModule's worklist implementation and the
//    reference implementation must produce byte-identical modules and make
//    identical decisions (same semantic counters) on every workload.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "ir/IRParser.h"
#include "ir/Interp.h"
#include "ir/Liveness.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::ir;

namespace {

/// Requires the tracker's rows to equal a fresh one-shot solve of \p F.
void expectTrackerMatchesFresh(const LivenessTracker &T, const Function &F,
                               const std::string &What) {
  Liveness Fresh = computeLiveness(F);
  ASSERT_EQ(T.numBlocks(), F.Blocks.size()) << What;
  for (size_t B = 0; B != F.Blocks.size(); ++B)
    for (uint32_t R = 0; R != F.numRegs(); ++R) {
      Reg Rg(R);
      ASSERT_EQ(T.isLiveIn(static_cast<int>(B), Rg),
                Fresh.LiveIn[B].test(R))
          << What << ": LiveIn mismatch at block " << B << " reg " << R;
      ASSERT_EQ(T.isLiveOut(static_cast<int>(B), Rg),
                Fresh.LiveOut[B].test(R))
          << What << ": LiveOut mismatch at block " << B << " reg " << R;
    }
}

/// CFG-preserving random edit of one block: delete, duplicate, or reorder a
/// non-terminator instruction. Returns false when the block is too small to
/// edit. Never creates register ids, never touches the terminator — the
/// exact mutation envelope the cleanup passes operate in.
bool mutateBlock(BasicBlock &B, std::mt19937 &Rng) {
  size_t Body = B.Instrs.size() - 1; // terminator excluded
  if (Body == 0)
    return false;
  switch (Rng() % 3) {
  case 0: { // delete
    if (Body < 2)
      return false;
    size_t At = Rng() % Body;
    B.Instrs.erase(B.Instrs.begin() + At);
    return true;
  }
  case 1: { // duplicate at a random position
    size_t From = Rng() % Body;
    size_t At = Rng() % (Body + 1);
    Instr Copy = B.Instrs[From];
    B.Instrs.insert(B.Instrs.begin() + At, Copy);
    return true;
  }
  default: { // swap two body instructions
    if (Body < 2)
      return false;
    size_t X = Rng() % Body, Y = Rng() % Body;
    std::swap(B.Instrs[X], B.Instrs[Y]);
    return true;
  }
  }
}

/// Lowered (virtual-register) modules with real multi-block CFGs to mutate:
/// a few workloads across unroll factors and with if-conversion off, so the
/// CFGs cover diamonds, loops and straight-line runs.
std::vector<Module> mutationSubjects() {
  std::vector<Module> Ms;
  const char *Names[] = {"tomcatv", "DYFESM", "hydro2d", "spice2g6"};
  for (const char *Name : Names) {
    const driver::Workload *W = driver::findWorkload(Name);
    if (!W)
      continue;
    lang::Program P = driver::parseWorkload(*W);
    for (int Unroll : {1, 4}) {
      lang::Program Copy = P;
      if (Unroll > 1) {
        xform::unrollLoops(Copy, Unroll);
        if (!lang::checkProgram(Copy).empty())
          continue; // re-check after unrolling, as the driver does
      }
      for (bool IfConv : {true, false}) {
        lower::LowerOptions LO;
        LO.IfConversion = IfConv;
        lower::LowerResult LR = lower::lowerProgram(Copy, LO);
        if (LR.ok())
          Ms.push_back(std::move(LR.M));
      }
    }
  }
  return Ms;
}

} // namespace

//===----------------------------------------------------------------------===//
// LivenessTracker incremental-update contract
//===----------------------------------------------------------------------===//

/// The first compute() must already equal the one-shot solver.
TEST(LivenessTracker, InitialComputeMatchesOneShot) {
  for (const Module &M : mutationSubjects()) {
    LivenessTracker T;
    T.compute(M.Fn);
    ASSERT_TRUE(T.valid());
    expectTrackerMatchesFresh(T, M.Fn, M.Fn.Name);
  }
}

/// Randomized edit batches: mark, refresh, compare against a fresh solve.
/// Deterministic seed so failures replay.
TEST(LivenessTracker, RandomizedEditsMatchFreshSolve) {
  std::mt19937 Rng(0xba15c4ed);
  for (Module &M : mutationSubjects()) {
    Function &F = M.Fn;
    LivenessTracker T;
    T.compute(F);
    for (int Round = 0; Round != 24; ++Round) {
      int Edits = 1 + static_cast<int>(Rng() % 4);
      bool Touched = false;
      for (int E = 0; E != Edits; ++E) {
        int B = static_cast<int>(Rng() % F.Blocks.size());
        if (mutateBlock(F.Blocks[B], Rng)) {
          T.markDirty(B);
          Touched = true;
        }
      }
      if (!Touched)
        continue;
      T.refresh(F);
      expectTrackerMatchesFresh(T, F,
                                std::string(F.Name) + " round " +
                                    std::to_string(Round));
    }
  }
}

/// A refresh after marking blocks dirty WITHOUT editing them must leave the
/// solution unchanged (markDirty is conservative, refresh is exact), and a
/// refresh with nothing dirty must be a no-op.
TEST(LivenessTracker, SpuriousDirtyMarksAreExact) {
  for (Module &M : mutationSubjects()) {
    Function &F = M.Fn;
    LivenessTracker T;
    T.compute(F);
    T.refresh(F); // clean: no-op
    expectTrackerMatchesFresh(T, F, std::string(F.Name) + " clean refresh");
    for (size_t B = 0; B < F.Blocks.size(); B += 2)
      T.markDirty(static_cast<int>(B));
    T.refresh(F);
    expectTrackerMatchesFresh(T, F, std::string(F.Name) + " spurious dirty");
  }
}

/// The skip-logic contract: a block whose rowVersion did not move across a
/// refresh has bit-identical LiveIn/LiveOut rows. (The converse need not
/// hold — versions bump conservatively for every block in the affected
/// region.) The cleanup pass's per-block DCE and hoist caches rely on this.
TEST(LivenessTracker, UnchangedRowVersionMeansUnchangedRows) {
  std::mt19937 Rng(0x5eed);
  for (Module &M : mutationSubjects()) {
    Function &F = M.Fn;
    LivenessTracker T;
    T.compute(F);
    size_t W = T.words();
    size_t NB = F.Blocks.size();
    std::vector<uint64_t> SnapIn(NB * W), SnapOut(NB * W), Ver(NB);
    for (int Round = 0; Round != 12; ++Round) {
      for (size_t B = 0; B != NB; ++B) {
        std::memcpy(&SnapIn[B * W], T.liveInRow(static_cast<int>(B)),
                    W * sizeof(uint64_t));
        std::memcpy(&SnapOut[B * W], T.liveOutRow(static_cast<int>(B)),
                    W * sizeof(uint64_t));
        Ver[B] = T.rowVersion(static_cast<int>(B));
      }
      int B = static_cast<int>(Rng() % NB);
      if (!mutateBlock(F.Blocks[B], Rng))
        continue;
      T.markDirty(B);
      T.refresh(F);
      for (size_t Blk = 0; Blk != NB; ++Blk) {
        ASSERT_GE(T.rowVersion(static_cast<int>(Blk)), Ver[Blk])
            << F.Name << ": rowVersion went backwards";
        if (T.rowVersion(static_cast<int>(Blk)) != Ver[Blk])
          continue;
        EXPECT_EQ(std::memcmp(&SnapIn[Blk * W],
                              T.liveInRow(static_cast<int>(Blk)),
                              W * sizeof(uint64_t)),
                  0)
            << F.Name << ": block " << Blk
            << " LiveIn moved under an unchanged rowVersion";
        EXPECT_EQ(std::memcmp(&SnapOut[Blk * W],
                              T.liveOutRow(static_cast<int>(Blk)),
                              W * sizeof(uint64_t)),
                  0)
            << F.Name << ": block " << Blk
            << " LiveOut moved under an unchanged rowVersion";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Cleanup twins
//===----------------------------------------------------------------------===//

/// The worklist cleanup and the reference twin must produce byte-identical
/// modules, identical semantic counters, and preserve the interpreter
/// checksum, over every workload at several unroll factors.
TEST(CleanupTwins, WorkloadSweep) {
  for (const driver::Workload &W : driver::workloads()) {
    lang::Program P = driver::parseWorkload(W);
    for (int Unroll : {1, 8}) {
      lang::Program Copy = P;
      if (Unroll > 1) {
        xform::unrollLoops(Copy, Unroll);
        ASSERT_EQ(lang::checkProgram(Copy), "") << W.Name;
      }
      lower::LowerResult LR = lower::lowerProgram(Copy, {});
      ASSERT_TRUE(LR.ok()) << W.Name << ": " << LR.Error;
      std::string What =
          std::string(W.Name) + " LU" + std::to_string(Unroll);

      InterpResult Before = interpret(LR.M);
      ASSERT_TRUE(Before.Finished) << What;

      Module FastM = LR.M;
      Module RefM = LR.M;
      opt::CleanupStats FS = opt::cleanupModule(FastM, false);
      opt::CleanupStats RS = opt::cleanupModule(RefM, true);

      EXPECT_EQ(printFunction(FastM.Fn), printFunction(RefM.Fn))
          << What << ": worklist cleanup diverged from the reference twin";
      EXPECT_EQ(FS.CopiesPropagated, RS.CopiesPropagated) << What;
      EXPECT_EQ(FS.ConstantsFolded, RS.ConstantsFolded) << What;
      EXPECT_EQ(FS.Hoisted, RS.Hoisted) << What;
      EXPECT_EQ(FS.DeadRemoved, RS.DeadRemoved) << What;

      InterpResult After = interpret(FastM);
      ASSERT_TRUE(After.Finished) << What;
      EXPECT_EQ(After.Checksum, Before.Checksum)
          << What << ": cleanup changed program behaviour";
    }
  }
}
