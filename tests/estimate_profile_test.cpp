//===- tests/estimate_profile_test.cpp - Static frequency estimation ------===//

#include "TestConfigs.h"
#include "driver/Experiment.h"
#include "driver/Workloads.h"
#include "fuzz/Oracle.h"
#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "ir/CFG.h"
#include "opt/Cleanup.h"
#include "trace/EstimateProfile.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::trace;

namespace {

Module lowerBranchy(const std::string &Src) {
  lang::ParseResult PR = lang::parseProgram(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  EXPECT_EQ(lang::checkProgram(PR.Prog), "");
  lower::LowerOptions LOpts;
  LOpts.IfConversion = false;
  lower::LowerResult LR = lower::lowerProgram(PR.Prog, LOpts);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return std::move(LR.M);
}

const char *NestedLoops = R"(
array A[16][16] output;
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) {
    A[i][j] = i + j;
  }
  A[i][0] = A[i][0] * 2.0;
}
A[0][0] = 1.0;
)";

} // namespace

TEST(LoopDepths, ReflectsNesting) {
  Module M = lowerBranchy(NestedLoops);
  std::vector<int> Depth = loopDepths(M.Fn);
  // Entry is depth 0; some block is depth 1 (outer body) and some depth 2
  // (inner body).
  EXPECT_EQ(Depth[0], 0);
  int MaxDepth = 0;
  for (int D : Depth)
    MaxDepth = std::max(MaxDepth, D);
  EXPECT_EQ(MaxDepth, 2);
}

TEST(EstimateProfile, DeeperBlocksGetHigherCounts) {
  Module M = lowerBranchy(NestedLoops);
  InterpResult Est = estimateProfile(M.Fn);
  std::vector<int> Depth = loopDepths(M.Fn);
  for (size_t A = 0; A != Depth.size(); ++A)
    for (size_t B = 0; B != Depth.size(); ++B)
      if (Depth[A] > Depth[B]) {
        EXPECT_GT(Est.BlockCounts[A], Est.BlockCounts[B])
            << "blocks " << A << " vs " << B;
      }
}

TEST(EstimateProfile, EdgeCountsConserveFlow) {
  Module M = lowerBranchy(NestedLoops);
  InterpResult Est = estimateProfile(M.Fn);
  for (const BasicBlock &B : M.Fn.Blocks) {
    std::vector<int> Succs = B.successors();
    if (Succs.empty())
      continue;
    uint64_t Out = Est.EdgeCounts[B.Id][0] + Est.EdgeCounts[B.Id][1];
    EXPECT_EQ(Out, Est.BlockCounts[B.Id]) << "block " << B.Id;
  }
}

TEST(EstimateProfile, BackEdgesDominateLoopBranches) {
  Module M = lowerBranchy("array A[64] output;\n"
                          "for (i = 0; i < 64; i += 1) { A[i] = i; }\n");
  InterpResult Est = estimateProfile(M.Fn);
  std::vector<std::vector<bool>> Back = findBackEdges(M.Fn);
  for (const BasicBlock &B : M.Fn.Blocks) {
    std::vector<int> Succs = B.successors();
    for (size_t K = 0; K != Succs.size(); ++K)
      if (Back[B.Id][K] && Succs.size() == 2) {
        size_t Other = 1 - K;
        EXPECT_GT(Est.EdgeCounts[B.Id][K], Est.EdgeCounts[B.Id][Other]);
      }
  }
}

TEST(EstimateProfile, DrivesTraceFormationLikeAProfile) {
  // On a biased diamond, the estimator cannot know the bias (50/50 split),
  // but its traces must still be valid paths covering every block once.
  Module M = lowerBranchy(R"(
array A[128] output;
var t = 0.0;
for (i = 0; i < 128; i += 1) {
  if (i < 120) { t = t + 1.0; A[i] = t; } else { A[i] = 0.0; }
  A[i] = A[i] + 1.0;
}
)");
  InterpResult Est = estimateProfile(M.Fn);
  std::vector<Trace> Traces = formTraces(M.Fn, Est);
  std::vector<int> Seen(M.Fn.Blocks.size(), 0);
  for (const Trace &T : Traces)
    for (int B : T)
      ++Seen[B];
  for (size_t B = 0; B != Seen.size(); ++B)
    EXPECT_EQ(Seen[B], 1);
}

TEST(EstimateProfile, TraceSchedulingWithEstimatesPreservesSemantics) {
  for (const char *Name : {"DYFESM", "doduc", "hydro2d", "mdljdp2"}) {
    lang::Program P = driver::parseWorkload(*driver::findWorkload(Name));
    lang::EvalResult Ref = lang::evalProgram(P);
    driver::CompileOptions O;
    O.TraceScheduling = true;
    O.UseEstimatedProfile = true;
    O.UnrollFactor = 4;
    driver::CompileResult C = driver::compileProgram(P, O);
    ASSERT_TRUE(C.ok()) << Name << ": " << C.Error;
    EXPECT_EQ(interpret(C.M).Checksum, Ref.Checksum) << Name;
  }
}

TEST(EstimateProfile, ConservesFlowOnEveryWorkload) {
  // The flow-conservation contract on real code: every workload, lowered and
  // cleaned the way the compile pipeline sees it, must yield a Finished
  // estimate where per block (entry units included) in-sum == count ==
  // out-sum, exactly, in integers.
  for (const driver::Workload &W : driver::workloads()) {
    lang::Program P = driver::parseWorkload(W);
    lower::LowerResult LR = lower::lowerProgram(P, {});
    ASSERT_TRUE(LR.ok()) << W.Name << ": " << LR.Error;
    opt::cleanupModule(LR.M);
    InterpResult Est = estimateProfile(LR.M.Fn);
    EXPECT_TRUE(Est.Finished) << W.Name;
    EXPECT_EQ(checkProfileConservation(LR.M.Fn, Est, EstimateEntryCount), "")
        << W.Name;
  }
}

TEST(EstimateProfile, ConservesFlowUnderFuzzConfigs) {
  // Same contract through the fuzzer's estimated-profile oracle leg: every
  // differential compile config (locality, unroll, cleanup on/off, both
  // scheduler kinds) rebuilt exactly as the pipeline would, on a few
  // representative workloads. A clean leg means conserving, deterministic,
  // Finished, and digestible by formTraces.
  fuzz::OracleOptions Opts;
  Opts.CheckEstimatedProfile = true;
  Opts.CheckSchedTwin = false;
  Opts.CheckTraceTwin = false;
  for (const char *Name : {"DYFESM", "hydro2d", "mdljdp2"}) {
    lang::Program P = driver::parseWorkload(*driver::findWorkload(Name));
    for (const driver::CompileOptions &Config : test::fuzzConfigs()) {
      fuzz::Failure F = fuzz::runCompileOracle(P, Config, Opts);
      EXPECT_EQ(F.Kind, fuzz::FailureKind::None)
          << Name << " [" << Config.tag() << "]: "
          << fuzz::failureKindName(F.Kind) << " " << F.Detail;
    }
  }
}

TEST(EstimateProfile, RecoversExactTripCounts) {
  // Statically-bounded loops are annotated at lowering time, so a nest whose
  // every branch is trip-count-determined must be estimated *exactly*: the
  // estimate equals the interpreted profile scaled by EstimateEntryCount,
  // block for block and edge for edge. Covers nesting, a constant-expression
  // bound, and a non-unit stride (trip = ceil(13/3) = 5).
  Module M = lowerBranchy(R"(
array A[16][16] output;
for (i = 0; i < 16 - 4; i += 1) {
  for (j = 0; j < 13; j += 3) {
    A[i][j] = i + j;
  }
  A[i][0] = A[i][0] + 1.0;
}
A[0][0] = 1.0;
)");
  InterpResult Est = estimateProfile(M.Fn);
  InterpResult Interp = interpret(M);
  ASSERT_TRUE(Est.Finished);
  ASSERT_TRUE(Interp.Finished);
  EXPECT_EQ(checkProfileConservation(M.Fn, Est, EstimateEntryCount), "");
  for (const BasicBlock &B : M.Fn.Blocks) {
    EXPECT_EQ(Est.BlockCounts[B.Id],
              Interp.BlockCounts[B.Id] * EstimateEntryCount)
        << "block " << B.Id;
    for (size_t K = 0; K != B.successors().size(); ++K)
      EXPECT_EQ(Est.EdgeCounts[B.Id][K],
                Interp.EdgeCounts[B.Id][K] * EstimateEntryCount)
          << "block " << B.Id << " slot " << K;
  }
}

TEST(EstimateProfile, ExactOnZeroTripAndPeeledStrides) {
  // Degenerate static bounds still recover exactly: a loop that never runs
  // (trip 0) and a short stride-4 loop whose last iteration is a partial
  // step (i = 3, 7; trip 2).
  Module M = lowerBranchy(R"(
array A[16] output;
for (i = 8; i < 8; i += 1) { A[i] = i; }
for (i = 3; i < 10; i += 4) { A[i] = i * 2; }
A[0] = 1.0;
)");
  InterpResult Est = estimateProfile(M.Fn);
  InterpResult Interp = interpret(M);
  ASSERT_TRUE(Est.Finished);
  ASSERT_TRUE(Interp.Finished);
  EXPECT_EQ(checkProfileConservation(M.Fn, Est, EstimateEntryCount), "");
  for (const BasicBlock &B : M.Fn.Blocks)
    EXPECT_EQ(Est.BlockCounts[B.Id],
              Interp.BlockCounts[B.Id] * EstimateEntryCount)
        << "block " << B.Id;
}

namespace {

/// Hand-built CFG skeletons the source language cannot express. Only the
/// terminators matter to the estimator; each block carries a defining LdI so
/// the function is not degenerate.
Module buildCfg(const std::vector<std::pair<int, int>> &Edges, int NumBlocks) {
  Module M;
  Function &F = M.Fn;
  Reg C = F.makeReg(RegClass::Int);
  for (int B = 0; B != NumBlocks; ++B)
    F.makeBlock();
  for (int B = 0; B != NumBlocks; ++B) {
    Instr In;
    In.Op = Opcode::LdI;
    In.Dst = C;
    In.Imm = 1;
    In.HasImm = true;
    F.Blocks[B].Instrs.push_back(In);
    std::vector<int> Succ;
    for (const auto &E : Edges)
      if (E.first == B)
        Succ.push_back(E.second);
    Instr T;
    if (Succ.empty()) {
      T.Op = Opcode::Ret;
    } else if (Succ.size() == 1) {
      T.Op = Opcode::Jmp;
      T.Target0 = Succ[0];
    } else {
      T.Op = Opcode::Br;
      T.SrcA = C;
      T.Target0 = Succ[0];
      T.Target1 = Succ[1];
    }
    F.Blocks[B].Instrs.push_back(T);
  }
  return M;
}

} // namespace

TEST(EstimateProfile, IrreducibleCfgFallsBackAndConserves) {
  // b1 and b2 jump into each other's "loop" without a dominating header —
  // the classic irreducible diamond. The reducible solver must refuse it and
  // the iterative fallback must still terminate with an exactly conserving,
  // deterministic estimate.
  Module M = buildCfg({{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 1}, {2, 3}},
                      /*NumBlocks=*/4);
  InterpResult Est = estimateProfile(M.Fn);
  EXPECT_TRUE(Est.Finished);
  EXPECT_EQ(checkProfileConservation(M.Fn, Est, EstimateEntryCount), "");
  InterpResult Est2 = estimateProfile(M.Fn);
  EXPECT_EQ(Est.BlockCounts, Est2.BlockCounts);
  EXPECT_EQ(Est.EdgeCounts, Est2.EdgeCounts);
  // All entry flow must reach the lone Ret block.
  EXPECT_EQ(Est.BlockCounts[3], EstimateEntryCount);
}

TEST(EstimateProfile, WhileShapeLoopConserves) {
  // A rotated-the-other-way loop: the header holds the exit branch and the
  // latch is an unconditional Jmp. The latch *must* deliver all its flow on
  // the back edge, which the planned-deficit pass cannot honor — this is the
  // over-delivery bailout path into the fallback.
  Module M = buildCfg({{0, 1}, {1, 2}, {1, 3}, {2, 1}}, /*NumBlocks=*/4);
  InterpResult Est = estimateProfile(M.Fn);
  EXPECT_TRUE(Est.Finished);
  EXPECT_EQ(checkProfileConservation(M.Fn, Est, EstimateEntryCount), "");
  // The loop body still looks hot relative to straight-line code.
  EXPECT_GT(Est.BlockCounts[2], 0u);
  EXPECT_EQ(Est.BlockCounts[3], EstimateEntryCount);
}

TEST(EstimateProfile, NonTerminatingCfgIsJudgedUnfinished) {
  // No path from the entry to a Ret: the estimator must report Finished ==
  // false, mirroring the interpreter exhausting its budget, so the driver
  // refuses to schedule traces off a meaningless profile.
  Module M = buildCfg({{0, 0}}, /*NumBlocks=*/1);
  InterpResult Est = estimateProfile(M.Fn);
  EXPECT_FALSE(Est.Finished);
}

namespace {

/// Spearman rank correlation with tie-averaged ranks.
double spearman(const std::vector<uint64_t> &A, const std::vector<uint64_t> &B) {
  auto Ranks = [](const std::vector<uint64_t> &V) {
    std::vector<size_t> Idx(V.size());
    for (size_t I = 0; I != Idx.size(); ++I)
      Idx[I] = I;
    std::sort(Idx.begin(), Idx.end(),
              [&](size_t X, size_t Y) { return V[X] < V[Y]; });
    std::vector<double> R(V.size());
    for (size_t I = 0; I != Idx.size();) {
      size_t J = I;
      while (J != Idx.size() && V[Idx[J]] == V[Idx[I]])
        ++J;
      double Mean = (static_cast<double>(I) + static_cast<double>(J - 1)) / 2;
      for (size_t K = I; K != J; ++K)
        R[Idx[K]] = Mean;
      I = J;
    }
    return R;
  };
  std::vector<double> RA = Ranks(A), RB = Ranks(B);
  double MA = 0, MB = 0;
  for (size_t I = 0; I != RA.size(); ++I) {
    MA += RA[I];
    MB += RB[I];
  }
  MA /= RA.size();
  MB /= RB.size();
  double Num = 0, DA = 0, DB = 0;
  for (size_t I = 0; I != RA.size(); ++I) {
    Num += (RA[I] - MA) * (RB[I] - MB);
    DA += (RA[I] - MA) * (RA[I] - MA);
    DB += (RB[I] - MB) * (RB[I] - MB);
  }
  if (DA == 0 || DB == 0)
    return 1.0; // constant profile: ranking is vacuously right
  return Num / std::sqrt(DA * DB);
}

} // namespace

TEST(EstimateProfile, BlockRankCorrelationFloor) {
  // What trace formation actually consumes is the *ranking* of blocks and
  // edges, not absolute counts. Pin a per-workload Spearman floor between
  // the estimated and interpreted block-count rankings so estimator changes
  // cannot silently wreck the ordering on any workload. Floors sit a little
  // under the measured values (see EXPERIMENTS.md).
  struct Floor {
    const char *Name;
    double MinRho;
  };
  const Floor Floors[] = {
      {"ARC2D", 0.99},   {"BDNA", 0.99},     {"DYFESM", 0.99},
      {"MDG", 0.99},     {"QCD2", 0.99},     {"TRFD", 0.99},
      {"alvinn", 0.99},  {"dnasa7", 0.99},   {"doduc", 0.90},
      {"ear", 0.99},     {"hydro2d", 0.99},  {"mdljdp2", 0.97},
      {"ora", 0.99},     {"spice2g6", 0.99}, {"su2cor", 0.99},
      {"swm256", 0.99},  {"tomcatv", 0.99},
  };
  for (const Floor &FL : Floors) {
    const driver::Workload *W = driver::findWorkload(FL.Name);
    ASSERT_NE(W, nullptr) << FL.Name;
    lang::Program P = driver::parseWorkload(*W);
    lower::LowerResult LR = lower::lowerProgram(P, {});
    ASSERT_TRUE(LR.ok()) << FL.Name << ": " << LR.Error;
    opt::cleanupModule(LR.M);
    InterpResult Est = estimateProfile(LR.M.Fn);
    InterpResult Interp = interpret(LR.M);
    ASSERT_TRUE(Est.Finished) << FL.Name;
    ASSERT_TRUE(Interp.Finished) << FL.Name;
    double Rho = spearman(Est.BlockCounts, Interp.BlockCounts);
    EXPECT_GE(Rho, FL.MinRho) << FL.Name << ": rank agreement regressed";
  }
}

TEST(EstimateProfile, CloseToProfiledPerformance) {
  // The estimator should give up little versus real profiles on loop-biased
  // code (its weak spot is data-dependent branches like DYFESM's).
  const driver::Workload &W = *driver::findWorkload("hydro2d");
  driver::CompileOptions Prof;
  Prof.TraceScheduling = true;
  Prof.UnrollFactor = 4;
  driver::CompileOptions Est = Prof;
  Est.UseEstimatedProfile = true;
  driver::RunResult RP = driver::runWorkload(W, Prof);
  driver::RunResult RE = driver::runWorkload(W, Est);
  ASSERT_TRUE(RP.ok()) << RP.Error;
  ASSERT_TRUE(RE.ok()) << RE.Error;
  double Ratio = static_cast<double>(RE.Sim.Cycles) /
                 static_cast<double>(RP.Sim.Cycles);
  EXPECT_LT(Ratio, 1.15) << "estimated-profile traces lost too much";
}
