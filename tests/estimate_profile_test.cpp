//===- tests/estimate_profile_test.cpp - Static frequency estimation ------===//

#include "driver/Experiment.h"
#include "driver/Workloads.h"
#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "ir/CFG.h"
#include "trace/EstimateProfile.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::trace;

namespace {

Module lowerBranchy(const std::string &Src) {
  lang::ParseResult PR = lang::parseProgram(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  EXPECT_EQ(lang::checkProgram(PR.Prog), "");
  lower::LowerOptions LOpts;
  LOpts.IfConversion = false;
  lower::LowerResult LR = lower::lowerProgram(PR.Prog, LOpts);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return std::move(LR.M);
}

const char *NestedLoops = R"(
array A[16][16] output;
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) {
    A[i][j] = i + j;
  }
  A[i][0] = A[i][0] * 2.0;
}
A[0][0] = 1.0;
)";

} // namespace

TEST(LoopDepths, ReflectsNesting) {
  Module M = lowerBranchy(NestedLoops);
  std::vector<int> Depth = loopDepths(M.Fn);
  // Entry is depth 0; some block is depth 1 (outer body) and some depth 2
  // (inner body).
  EXPECT_EQ(Depth[0], 0);
  int MaxDepth = 0;
  for (int D : Depth)
    MaxDepth = std::max(MaxDepth, D);
  EXPECT_EQ(MaxDepth, 2);
}

TEST(EstimateProfile, DeeperBlocksGetHigherCounts) {
  Module M = lowerBranchy(NestedLoops);
  InterpResult Est = estimateProfile(M.Fn);
  std::vector<int> Depth = loopDepths(M.Fn);
  for (size_t A = 0; A != Depth.size(); ++A)
    for (size_t B = 0; B != Depth.size(); ++B)
      if (Depth[A] > Depth[B]) {
        EXPECT_GT(Est.BlockCounts[A], Est.BlockCounts[B])
            << "blocks " << A << " vs " << B;
      }
}

TEST(EstimateProfile, EdgeCountsConserveFlow) {
  Module M = lowerBranchy(NestedLoops);
  InterpResult Est = estimateProfile(M.Fn);
  for (const BasicBlock &B : M.Fn.Blocks) {
    std::vector<int> Succs = B.successors();
    if (Succs.empty())
      continue;
    uint64_t Out = Est.EdgeCounts[B.Id][0] + Est.EdgeCounts[B.Id][1];
    EXPECT_EQ(Out, Est.BlockCounts[B.Id]) << "block " << B.Id;
  }
}

TEST(EstimateProfile, BackEdgesDominateLoopBranches) {
  Module M = lowerBranchy("array A[64] output;\n"
                          "for (i = 0; i < 64; i += 1) { A[i] = i; }\n");
  InterpResult Est = estimateProfile(M.Fn);
  std::vector<std::vector<bool>> Back = findBackEdges(M.Fn);
  for (const BasicBlock &B : M.Fn.Blocks) {
    std::vector<int> Succs = B.successors();
    for (size_t K = 0; K != Succs.size(); ++K)
      if (Back[B.Id][K] && Succs.size() == 2) {
        size_t Other = 1 - K;
        EXPECT_GT(Est.EdgeCounts[B.Id][K], Est.EdgeCounts[B.Id][Other]);
      }
  }
}

TEST(EstimateProfile, DrivesTraceFormationLikeAProfile) {
  // On a biased diamond, the estimator cannot know the bias (50/50 split),
  // but its traces must still be valid paths covering every block once.
  Module M = lowerBranchy(R"(
array A[128] output;
var t = 0.0;
for (i = 0; i < 128; i += 1) {
  if (i < 120) { t = t + 1.0; A[i] = t; } else { A[i] = 0.0; }
  A[i] = A[i] + 1.0;
}
)");
  InterpResult Est = estimateProfile(M.Fn);
  std::vector<Trace> Traces = formTraces(M.Fn, Est);
  std::vector<int> Seen(M.Fn.Blocks.size(), 0);
  for (const Trace &T : Traces)
    for (int B : T)
      ++Seen[B];
  for (size_t B = 0; B != Seen.size(); ++B)
    EXPECT_EQ(Seen[B], 1);
}

TEST(EstimateProfile, TraceSchedulingWithEstimatesPreservesSemantics) {
  for (const char *Name : {"DYFESM", "doduc", "hydro2d", "mdljdp2"}) {
    lang::Program P = driver::parseWorkload(*driver::findWorkload(Name));
    lang::EvalResult Ref = lang::evalProgram(P);
    driver::CompileOptions O;
    O.TraceScheduling = true;
    O.UseEstimatedProfile = true;
    O.UnrollFactor = 4;
    driver::CompileResult C = driver::compileProgram(P, O);
    ASSERT_TRUE(C.ok()) << Name << ": " << C.Error;
    EXPECT_EQ(interpret(C.M).Checksum, Ref.Checksum) << Name;
  }
}

TEST(EstimateProfile, CloseToProfiledPerformance) {
  // The estimator should give up little versus real profiles on loop-biased
  // code (its weak spot is data-dependent branches like DYFESM's).
  const driver::Workload &W = *driver::findWorkload("hydro2d");
  driver::CompileOptions Prof;
  Prof.TraceScheduling = true;
  Prof.UnrollFactor = 4;
  driver::CompileOptions Est = Prof;
  Est.UseEstimatedProfile = true;
  driver::RunResult RP = driver::runWorkload(W, Prof);
  driver::RunResult RE = driver::runWorkload(W, Est);
  ASSERT_TRUE(RP.ok()) << RP.Error;
  ASSERT_TRUE(RE.ok()) << RE.Error;
  double Ratio = static_cast<double>(RE.Sim.Cycles) /
                 static_cast<double>(RP.Sim.Cycles);
  EXPECT_LT(Ratio, 1.15) << "estimated-profile traces lost too much";
}
