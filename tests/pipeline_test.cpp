//===- tests/pipeline_test.cpp - Whole-pipeline equivalence sweep ----------===//
//
// The project's most important test: for every workload kernel and every
// experimental configuration the paper evaluates, the fully compiled program
// (transforms + scheduling + trace scheduling + register allocation) must
// compute exactly what the AST oracle computes.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Experiment.h"
#include "driver/Workloads.h"
#include "ir/Interp.h"
#include "lang/Eval.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::driver;

namespace {

struct Config {
  const char *Name;
  CompileOptions Opts;
};

std::vector<Config> allConfigs() {
  std::vector<Config> Cs;
  for (auto Kind : {sched::SchedulerKind::Traditional,
                    sched::SchedulerKind::Balanced}) {
    const char *K = Kind == sched::SchedulerKind::Balanced ? "BS" : "TS";
    auto Add = [&](const char *Suffix, int LU, bool TrS, bool LA) {
      CompileOptions O;
      O.Scheduler = Kind;
      O.UnrollFactor = LU;
      O.TraceScheduling = TrS;
      O.LocalityAnalysis = LA;
      Cs.push_back({nullptr, O});
      static std::vector<std::string> NameStore;
      NameStore.push_back(std::string(K) + Suffix);
      Cs.back().Name = NameStore.back().c_str();
    };
    Add("", 1, false, false);
    Add("+LU4", 4, false, false);
    Add("+LU8", 8, false, false);
    Add("+TrS+LU4", 4, true, false);
    Add("+LA", 1, false, true);
    Add("+LA+TrS+LU8", 8, true, true);
  }
  return Cs;
}

class PipelineEquivalence : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(PipelineEquivalence, AllConfigsMatchOracle) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  lang::Program P = parseWorkload(*W);
  lang::EvalResult Ref = lang::evalProgram(P);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;

  for (const Config &C : allConfigs()) {
    CompileResult R = compileProgram(P, C.Opts);
    ASSERT_TRUE(R.ok()) << W->Name << " [" << C.Name << "]: " << R.Error;
    ir::InterpResult I = ir::interpret(R.M);
    ASSERT_TRUE(I.Finished) << W->Name << " [" << C.Name << "]";
    EXPECT_EQ(I.Checksum, Ref.Checksum)
        << W->Name << " [" << C.Name << "] miscompiled";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineEquivalence,
    ::testing::Values("ARC2D", "BDNA", "DYFESM", "MDG", "QCD2", "TRFD",
                      "alvinn", "dnasa7", "doduc", "ear", "hydro2d",
                      "mdljdp2", "ora", "spice2g6", "su2cor", "swm256",
                      "tomcatv"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(Experiment, RunCachedReferencesSurviveCacheGrowth) {
  // runCached hands out references that benches hold across many later
  // calls; they must survive however much the underlying table grows or
  // rehashes. Insert enough distinct configurations to force growth and
  // check the first reference is still the same object with the same
  // contents.
  const Workload *W = findWorkload("ora");
  ASSERT_NE(W, nullptr);
  CompileOptions Base;
  Base.Scheduler = sched::SchedulerKind::Traditional;
  Base.VerifyPasses = false; // keep the growth loop cheap
  Base.Balance.PressureThreshold = 1000; // distinct key space for this test
  const RunResult &First = runCached(*W, Base);
  ASSERT_TRUE(First.ok()) << First.Error;
  const RunResult *FirstAddr = &First;
  const uint64_t FirstCycles = First.Sim.Cycles;
  for (int I = 1; I <= 40; ++I) {
    CompileOptions O = Base;
    O.Balance.PressureThreshold = 1000 + I; // key differs; run is identical
    ASSERT_TRUE(runCached(*W, O).ok());
  }
  EXPECT_EQ(&First, FirstAddr);
  EXPECT_EQ(First.Sim.Cycles, FirstCycles);
  // And the memoization itself: same key returns the same object.
  EXPECT_EQ(&runCached(*W, Base), FirstAddr);
}

TEST(Workloads, SeventeenKernelsMatchingThePaper) {
  EXPECT_EQ(workloads().size(), 17u);
  EXPECT_STREQ(workloads().front().Name, "ARC2D");
  EXPECT_STREQ(workloads().back().Name, "tomcatv");
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(Workloads, AllParseCheckAndEvaluate) {
  for (const Workload &W : workloads()) {
    lang::Program P = parseWorkload(W);
    lang::EvalResult R = lang::evalProgram(P);
    EXPECT_TRUE(R.ok()) << W.Name << ": " << R.Error;
    EXPECT_GT(R.StmtCount, 1000u) << W.Name << " is trivially small";
  }
}

TEST(Workloads, EngineeredUnrollingBehaviour) {
  // The per-kernel unrolling stories DESIGN.md promises.
  auto UnrollOf = [](const char *Name, int Factor) {
    CompileOptions O;
    O.UnrollFactor = Factor;
    CompileResult R = compileProgram(parseWorkload(*findWorkload(Name)), O);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.Unroll;
  };
  // BDNA: the big block's loop is skipped on size.
  EXPECT_GE(UnrollOf("BDNA", 4).LoopsSkippedSize, 1);
  // mdljdp2: >1 non-predicable conditionals gate the hot loop.
  EXPECT_GE(UnrollOf("mdljdp2", 4).LoopsSkippedBranches, 1);
  // doduc: the branchy phase is skipped, the sweeps unroll.
  xform::UnrollStats Doduc = UnrollOf("doduc", 4);
  EXPECT_GE(Doduc.LoopsSkippedBranches, 1);
  EXPECT_GE(Doduc.LoopsUnrolled, 5);
  // ora: the ray block is too large to unroll at all.
  EXPECT_GE(UnrollOf("ora", 4).LoopsSkippedSize, 1);
  // swm256: the hot stencil is only partially unrolled at factor 4 (its
  // small init loop still unrolls fully), and the factor-8 cap admits more.
  xform::UnrollStats Swm4 = UnrollOf("swm256", 4);
  EXPECT_GE(Swm4.LoopsUnrolled, 2);
  EXPECT_LT(Swm4.LoopsFullyUnrolled, Swm4.LoopsUnrolled)
      << "swm256's hot loop must clamp at factor 4";
  // dnasa7: the matrix loop unrolls fully at 4.
  EXPECT_GE(UnrollOf("dnasa7", 4).LoopsFullyUnrolled, 1);
}

TEST(Workloads, EngineeredLocalityBehaviour) {
  auto LocalityOf = [](const char *Name) {
    CompileOptions O;
    O.LocalityAnalysis = true;
    CompileResult R = compileProgram(parseWorkload(*findWorkload(Name)), O);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.Locality;
  };
  // tomcatv: the LA star — spatial reuse on its read-only grids.
  locality::LocalityStats Tom = LocalityOf("tomcatv");
  EXPECT_GE(Tom.SpatialRefs, 4);
  // dnasa7: temporal reuse (A[i][k] in the j loop) plus spatial.
  locality::LocalityStats Dnasa = LocalityOf("dnasa7");
  EXPECT_GE(Dnasa.TemporalRefs, 1);
  EXPECT_GE(Dnasa.SpatialRefs, 1);
  // spice2g6: indirection defeats the analysis for the value arrays (the
  // sequential index stream itself may be marked).
  locality::LocalityStats Spice = LocalityOf("spice2g6");
  EXPECT_LE(Spice.SpatialRefs + Spice.TemporalRefs, 1);
  EXPECT_GE(Spice.RefsNoInfo, 2);
  // QCD2: full-line strides leave nothing to mark.
  locality::LocalityStats Qcd = LocalityOf("QCD2");
  EXPECT_EQ(Qcd.SpatialRefs, 0);
}

TEST(Compiler, TagsAreReadable) {
  CompileOptions O;
  EXPECT_EQ(O.tag(), "BS");
  O.Scheduler = sched::SchedulerKind::Traditional;
  O.UnrollFactor = 8;
  O.TraceScheduling = true;
  O.LocalityAnalysis = true;
  EXPECT_EQ(O.tag(), "TS+LA+LU8+TrS");
}

TEST(Compiler, ParseErrorsSurface) {
  CompileOptions O;
  CompileResult R = compileSource("for (i = 0; j < 3; i += 1) {}", "bad", O);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("parse"), std::string::npos);
}

TEST(Compiler, StopBeforeRegAllocLeavesVirtualRegs) {
  CompileOptions O;
  O.StopBeforeRegAlloc = true;
  CompileResult R =
      compileSource("array A[8] output;\n"
                    "for (i = 0; i < 8; i += 1) { A[i] = i; }\n",
                    "k", O);
  ASSERT_TRUE(R.ok()) << R.Error;
  bool AnyVirtual = false;
  for (const ir::BasicBlock &B : R.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      if (ir::Reg D = I.def(); D.isValid())
        AnyVirtual |= D.isVirtual();
  EXPECT_TRUE(AnyVirtual);
}

TEST(Simulated, SpotChecksOnTheFullMachine) {
  // A couple of end-to-end simulations (the bench binaries cover the rest).
  for (const char *Name : {"ARC2D", "spice2g6"}) {
    const Workload *W = findWorkload(Name);
    lang::Program P = parseWorkload(*W);
    lang::EvalResult Ref = lang::evalProgram(P);
    CompileOptions O;
    CompileResult R = compileProgram(P, O);
    ASSERT_TRUE(R.ok()) << R.Error;
    sim::SimResult S = sim::simulate(R.M);
    ASSERT_TRUE(S.Finished);
    EXPECT_EQ(S.Checksum, Ref.Checksum) << Name;
    EXPECT_GT(S.Cycles, S.Counts.total());
  }
}
