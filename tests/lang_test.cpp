//===- tests/lang_test.cpp - Parser / checker / AST utility tests ---------===//

#include "lang/AST.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::lang;

namespace {

Program parseOk(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

} // namespace

TEST(Parser, ParsesDeclarations) {
  Program P = parseOk("array A[4][8] output;\n"
                      "array idx[16] int;\n"
                      "array F[10] colmajor;\n"
                      "var x = 1.5;\n"
                      "var n int = 42;\n");
  ASSERT_EQ(P.Arrays.size(), 3u);
  EXPECT_EQ(P.Arrays[0].Name, "A");
  EXPECT_EQ(P.Arrays[0].Dims, (std::vector<int64_t>{4, 8}));
  EXPECT_TRUE(P.Arrays[0].IsOutput);
  EXPECT_EQ(P.Arrays[1].ElemTy, Type::Int);
  EXPECT_FALSE(P.Arrays[2].RowMajor);
  ASSERT_EQ(P.Vars.size(), 2u);
  EXPECT_DOUBLE_EQ(P.Vars[0].FpInit, 1.5);
  EXPECT_EQ(P.Vars[1].IntInit, 42);
}

TEST(Parser, ParsesLoopNest) {
  Program P = parseOk("array A[8][8];\n"
                      "array C[8][8] output;\n"
                      "for (i = 0; i < 8; i += 1) {\n"
                      "  for (j = 0; j < 8; j += 2) {\n"
                      "    C[i][j] = A[i][j] + 1.0;\n"
                      "  }\n"
                      "}\n");
  ASSERT_EQ(P.Body.size(), 1u);
  const Stmt &Outer = *P.Body[0];
  EXPECT_EQ(Outer.Kind, StmtKind::For);
  EXPECT_EQ(Outer.LoopVar, "i");
  ASSERT_EQ(Outer.Body.size(), 1u);
  EXPECT_EQ(Outer.Body[0]->Step, 2);
}

TEST(Parser, ParsesIfElseChain) {
  Program P = parseOk("var x = 0.0;\n"
                      "if (x < 1.0) { x = 1.0; }\n"
                      "else if (x < 2.0) { x = 2.0; }\n"
                      "else { x = 3.0; }\n");
  const Stmt &If = *P.Body[0];
  EXPECT_EQ(If.Kind, StmtKind::If);
  ASSERT_EQ(If.Else.size(), 1u);
  EXPECT_EQ(If.Else[0]->Kind, StmtKind::If);
  EXPECT_EQ(If.Else[0]->Else.size(), 1u);
}

TEST(Parser, PlusAssignDesugarsToAdd) {
  Program P = parseOk("var s = 0.0;\ns += 2.5;\n");
  const Stmt &S = *P.Body[0];
  EXPECT_EQ(S.Kind, StmtKind::Assign);
  EXPECT_EQ(S.Rhs->Kind, ExprKind::Binary);
  EXPECT_EQ(S.Rhs->BOp, BinOp::Add);
}

TEST(Parser, Precedence) {
  Program P = parseOk("var a = 0.0;\na = 1.0 + 2.0 * 3.0;\n");
  const Expr &R = *P.Body[0]->Rhs;
  ASSERT_EQ(R.Kind, ExprKind::Binary);
  EXPECT_EQ(R.BOp, BinOp::Add);
  EXPECT_EQ(R.Args[1]->BOp, BinOp::Mul);
}

TEST(Parser, Comments) {
  Program P = parseOk("# a comment\nvar x = 1.0; # trailing\n");
  EXPECT_EQ(P.Vars.size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  ParseResult R = parseProgram("var x = 1.0;\nfor (i = 0; j < 8; i += 1) {}");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 2"), std::string::npos);
}

TEST(Parser, RejectsNonPositiveStep) {
  ParseResult R = parseProgram("for (i = 0; i < 8; i += 0) {}");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, RejectsUnknownAttribute) {
  ParseResult R = parseProgram("array A[4] wobble;");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, MalformedInputsProduceDiagnosticsNotCrashes) {
  // Every snippet is broken in a different place; each must come back with
  // a non-empty diagnostic (never an empty-string "error", never a crash).
  const char *Broken[] = {
      "var",
      "var x",
      "var x =",
      "var x = ;",
      "var x = 1.0",          // missing semicolon
      "array;",
      "array A;",
      "array A[];",
      "array A[0];",
      "array A[-3];",
      "array A[4",
      "for",
      "for (",
      "for (i",
      "for (i = 0; i < 8; i += 1)",      // missing body
      "for (i = 0; i < 8; i += 1) {",    // unterminated body
      "for (i = 0; i < 8) {}",
      "if () {}",                         // empty condition
      "var x = 1.0; x = ((x + 1.0;",
      "var x = 1.0; x = x @ 2.0;",
      "var x = 1.0; if x > 0.0 {}",
      "}",
      "( ) { } ; , [ ]",
      "\"unterminated",
      "var \xff\xfe = 1.0;",
  };
  for (const char *Src : Broken) {
    ParseResult R = parseProgram(Src);
    EXPECT_FALSE(R.ok()) << "accepted: " << Src;
    EXPECT_FALSE(R.Error.empty()) << "empty diagnostic for: " << Src;
  }
}

TEST(Parser, EveryPrefixOfAValidProgramIsHandled) {
  // Truncation fuzzing: parsing any prefix of a valid program must either
  // succeed or fail with a diagnostic — no assertion, no crash.
  const std::string Src = "array A[8] output;\n"
                          "var x = 1.0;\n"
                          "for (i = 0; i < 8; i += 1) {\n"
                          "  if (x < 4.0) { A[i] = x * 2.0; }\n"
                          "  else { A[i] = x + 1.0; }\n"
                          "}\n";
  for (size_t N = 0; N <= Src.size(); ++N) {
    ParseResult R = parseProgram(Src.substr(0, N));
    if (!R.ok()) {
      EXPECT_FALSE(R.Error.empty()) << "prefix length " << N;
    }
  }
}

TEST(Checker, InsertsIntToFpConversion) {
  Program P = parseOk("var x = 0.0;\nx = 1 + x;\n");
  const Expr &R = *P.Body[0]->Rhs;
  ASSERT_EQ(R.Kind, ExprKind::Binary);
  EXPECT_EQ(R.Ty, Type::Fp);
  EXPECT_EQ(R.Args[0]->Kind, ExprKind::Unary);
  EXPECT_EQ(R.Args[0]->UOp, UnOp::IToF);
}

TEST(Checker, RejectsFpToIntAssignment) {
  ParseResult R = parseProgram("var n int = 0;\nn = 1.5;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(checkProgram(R.Prog), "");
}

TEST(Checker, RejectsUnknownNames) {
  ParseResult R = parseProgram("x = 1.0;");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(checkProgram(R.Prog), "");
}

TEST(Checker, RejectsWrongSubscriptCount) {
  ParseResult R = parseProgram("array A[4][4];\nA[1] = 0.0;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(checkProgram(R.Prog), "");
}

TEST(Checker, RejectsAssignToLoopVar) {
  ParseResult R = parseProgram("var y = 0.0;\n"
                               "for (i = 0; i < 4; i += 1) { i = 2; }\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(checkProgram(R.Prog), "");
}

TEST(Checker, RejectsFpSubscript) {
  ParseResult R = parseProgram("array A[4];\nvar x = 1.0;\nA[x] = 0.0;\n");
  ASSERT_TRUE(R.ok());
  EXPECT_NE(checkProgram(R.Prog), "");
}

TEST(Checker, IsIdempotent) {
  Program P = parseOk("var x = 0.0;\nx = 1 + x;\n");
  EXPECT_EQ(checkProgram(P), "");
  // No double promotion: the IToF stays a single level.
  const Expr &L = *P.Body[0]->Rhs->Args[0];
  EXPECT_EQ(L.UOp, UnOp::IToF);
  EXPECT_EQ(L.Args[0]->Kind, ExprKind::IntLit);
}

TEST(AST, CloneIsDeep) {
  Program P = parseOk("array A[4] output;\n"
                      "for (i = 0; i < 4; i += 1) { A[i] = 1.0; }\n");
  Program Q = P; // copy ctor clones
  Q.Body[0]->Body[0]->Rhs->FpVal = 9.0;
  EXPECT_DOUBLE_EQ(P.Body[0]->Body[0]->Rhs->FpVal, 1.0);
}

TEST(AST, AddToVarRefsRewritesUses) {
  Program P = parseOk("array A[16] output;\n"
                      "for (i = 0; i < 16; i += 1) { A[i] = 1.0; }\n");
  Stmt &Body = *P.Body[0]->Body[0];
  addToVarRefs(Body, "i", 3);
  std::string S = printStmt(Body);
  EXPECT_NE(S.find("(i + 3)"), std::string::npos);
}

TEST(AST, AddToVarRefsRespectsShadowing) {
  Program P = parseOk("array A[4][4] output;\n"
                      "for (i = 0; i < 4; i += 1) {\n"
                      "  for (i = 0; i < 4; i += 1) { A[i][i] = 1.0; }\n"
                      "}\n");
  Stmt &Outer = *P.Body[0];
  // Rewriting the outer i must not touch the inner loop's shadowed uses.
  addToVarRefs(*Outer.Body[0], "i", 1);
  std::string S = printStmt(*Outer.Body[0]);
  EXPECT_EQ(S.find("(i + 1)"), std::string::npos);
}

TEST(AST, ReplaceVarRefs) {
  Program P = parseOk("array A[16] output;\n"
                      "for (i = 0; i < 16; i += 1) { A[i] = 1.0; }\n");
  Stmt &Body = *P.Body[0]->Body[0];
  ExprPtr Zero = intLit(0);
  replaceVarRefs(Body, "i", *Zero);
  std::string S = printStmt(Body);
  EXPECT_NE(S.find("A[0]"), std::string::npos);
}

TEST(AST, EstimateCostGrowsWithBody) {
  Program P1 = parseOk("array A[8] output;\n"
                       "for (i = 0; i < 8; i += 1) { A[i] = 1.0; }\n");
  Program P2 = parseOk("array A[8] output;\narray B[8];\n"
                       "for (i = 0; i < 8; i += 1) {"
                       " A[i] = B[i] * 2.0 + 1.0; A[i] = A[i] + B[i]; }\n");
  EXPECT_GT(estimateCost(*P2.Body[0]), estimateCost(*P1.Body[0]));
}

TEST(AST, PrintRoundTripReparses) {
  Program P = parseOk("array A[4][4];\narray C[4][4] output;\nvar t = 0.5;\n"
                      "for (i = 0; i < 4; i += 1) {\n"
                      "  for (j = 0; j < 4; j += 1) {\n"
                      "    C[i][j] = A[i][j] * t + 1.0;\n"
                      "  }\n"
                      "  if (C[i][0] < 2.0) { t = t + 0.25; }\n"
                      "}\n");
  std::string Printed = printProgram(P);
  ParseResult R2 = parseProgram(Printed);
  ASSERT_TRUE(R2.ok()) << R2.Error << "\n" << Printed;
  EXPECT_EQ(checkProgram(R2.Prog), "");
  EXPECT_EQ(printProgram(R2.Prog), Printed);
}
