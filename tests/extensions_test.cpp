//===- tests/extensions_test.cpp - Section-6 future-work extensions --------===//
//
// Tests for the three extensions the paper names as future work:
//  1. wider-issue (superscalar) simulation,
//  2. balanced weights for fixed-latency multi-cycle instructions,
//  3. per-block choice between the balanced and traditional schedulers.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "sched/DepDAG.h"
#include "sched/Schedule.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;

namespace {

lang::Program parseOk(const std::string &Src) {
  lang::ParseResult R = lang::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = lang::checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

Module compileFor(const lang::Program &P, SchedulerKind K,
                  driver::CompileOptions Extra = {}) {
  Extra.Scheduler = K;
  driver::CompileResult C = driver::compileProgram(P, Extra);
  EXPECT_TRUE(C.ok()) << C.Error;
  return std::move(C.M);
}

const char *MixedKernel = R"(
array A[8192];
array Out[8] output;
var s = 0.0;
var t = 1.0;
for (i = 0; i < 8192; i += 1) { A[i] = i * 0.3; }
for (i = 0; i < 8184; i += 1) {
  s = s + A[i] * 2.0 + A[i + 5] * 0.5;
  t = t * 1.000001 + s * 0.000001;
}
Out[0] = s;
Out[1] = t;
)";

} // namespace

//===----------------------------------------------------------------------===//
// 1. Superscalar issue
//===----------------------------------------------------------------------===//

TEST(Superscalar, WiderIssueIsFasterAndEquivalent) {
  lang::Program P = parseOk(MixedKernel);
  lang::EvalResult Ref = lang::evalProgram(P);
  Module M = compileFor(P, SchedulerKind::Balanced);

  uint64_t Width1 = 0, Prev = ~0ull;
  for (unsigned W : {1u, 2u, 4u}) {
    sim::MachineConfig C;
    C.IssueWidth = W;
    sim::SimResult R = sim::simulate(M, C);
    ASSERT_TRUE(R.Finished);
    EXPECT_EQ(R.Checksum, Ref.Checksum) << "width " << W;
    // Wider never hurts; once the kernel is dependence- or memory-bound,
    // extra width may tie (2 -> 4 often does).
    EXPECT_LE(R.Cycles, Prev) << "width " << W;
    Prev = R.Cycles;
    if (W == 1)
      Width1 = R.Cycles;
  }
  EXPECT_LT(Prev, Width1) << "width 4 must beat single issue";
}

TEST(Superscalar, MemorySlotLimitBinds) {
  // A store-dominated kernel: with one memory op per cycle, width 4 cannot
  // beat the number of memory operations.
  lang::Program P = parseOk(R"(
array A[4096] output;
for (i = 0; i < 4096; i += 1) { A[i] = 1.0; }
)");
  Module M = compileFor(P, SchedulerKind::Balanced);
  sim::MachineConfig C;
  C.IssueWidth = 4;
  sim::SimResult R = sim::simulate(M, C);
  ASSERT_TRUE(R.Finished);
  EXPECT_GE(R.Cycles, R.Counts.Loads + R.Counts.Stores);
}

TEST(Superscalar, WidthOneMatchesLegacyAccounting) {
  lang::Program P = parseOk(MixedKernel);
  Module M = compileFor(P, SchedulerKind::Balanced);
  sim::SimResult R = sim::simulate(M);
  uint64_t Stalls = R.LoadInterlockCycles + R.FixedInterlockCycles +
                    R.ICacheStallCycles + R.ITlbStallCycles +
                    R.DTlbStallCycles + R.BranchPenaltyCycles +
                    R.MshrStallCycles + R.WriteBufferStallCycles;
  EXPECT_EQ(R.Cycles, R.Counts.total() + Stalls);
}

TEST(Superscalar, BalancedAdvantageHoldsAtWidthFour) {
  // The paper's motivation for the extension: wider issue consumes ILP
  // faster, so schedules matter at least as much.
  lang::Program P = parseOk(MixedKernel);
  lang::EvalResult Ref = lang::evalProgram(P);
  Module MB = compileFor(P, SchedulerKind::Balanced);
  Module MT = compileFor(P, SchedulerKind::Traditional);
  sim::MachineConfig C;
  C.IssueWidth = 4;
  sim::SimResult RB = sim::simulate(MB, C);
  sim::SimResult RT = sim::simulate(MT, C);
  ASSERT_TRUE(RB.Finished);
  ASSERT_TRUE(RT.Finished);
  EXPECT_EQ(RB.Checksum, Ref.Checksum);
  EXPECT_EQ(RT.Checksum, Ref.Checksum);
  EXPECT_LE(RB.LoadInterlockCycles, RT.LoadInterlockCycles);
}

TEST(Superscalar, AllWorkloadsRunAtWidthFour) {
  for (const driver::Workload &W : driver::workloads()) {
    lang::Program P = driver::parseWorkload(W);
    lang::EvalResult Ref = lang::evalProgram(P);
    Module M = compileFor(P, SchedulerKind::Balanced);
    sim::MachineConfig C;
    C.IssueWidth = 4;
    sim::SimResult R = sim::simulate(M, C);
    ASSERT_TRUE(R.Finished) << W.Name;
    EXPECT_EQ(R.Checksum, Ref.Checksum) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// 2. Balancing fixed-latency operations
//===----------------------------------------------------------------------===//

TEST(BalanceFixed, FixedWeightsNeverExceedTrueLatency) {
  // Block: one load, one FDiv, one FMul, several independent int padders.
  lang::Program P = parseOk(R"(
array A[64];
array Out[8] output;
var x = 3.0;
var y = 7.0;
var n int = 0;
for (i = 0; i < 60; i += 1) {
  x = x / (A[i] * 0.25 + 1.5);
  y = y * 1.25 + A[i + 2];
}
Out[0] = x + y + n;
)");
  driver::CompileOptions O;
  O.StopBeforeRegAlloc = true;
  driver::CompileResult C = driver::compileProgram(P, O);
  ASSERT_TRUE(C.ok()) << C.Error;

  for (const BasicBlock &B : C.M.Fn.Blocks) {
    if (B.Instrs.size() < 8)
      continue;
    std::vector<const Instr *> Ptrs;
    for (const Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    BalanceOptions Opts;
    Opts.BalanceFixedOps = true;
    std::vector<double> W = balancedWeights(G, Ptrs, Opts);
    for (size_t K = 0; K != Ptrs.size(); ++K) {
      if (Ptrs[K]->isLoad() || Ptrs[K]->isTerminator())
        continue;
      int TrueLat = opInfo(Ptrs[K]->Op).Latency;
      if (TrueLat > 1) {
        EXPECT_LE(W[K], static_cast<double>(TrueLat)) << printInstr(*Ptrs[K]);
        EXPECT_GE(W[K], 1.0);
      } else {
        EXPECT_DOUBLE_EQ(W[K], static_cast<double>(TrueLat));
      }
    }
  }
}

TEST(BalanceFixed, DisabledLeavesFixedWeightsAlone) {
  lang::Program P = parseOk(MixedKernel);
  driver::CompileOptions O;
  O.StopBeforeRegAlloc = true;
  driver::CompileResult C = driver::compileProgram(P, O);
  ASSERT_TRUE(C.ok());
  for (const BasicBlock &B : C.M.Fn.Blocks) {
    std::vector<const Instr *> Ptrs;
    for (const Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    if (Ptrs.size() < 3)
      continue;
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    std::vector<double> W = balancedWeights(G, Ptrs); // default options
    for (size_t K = 0; K != Ptrs.size(); ++K) {
      if (!Ptrs[K]->isLoad()) {
        EXPECT_DOUBLE_EQ(W[K],
                         static_cast<double>(opInfo(Ptrs[K]->Op).Latency));
      }
    }
  }
}

TEST(BalanceFixed, SemanticsPreservedOnWorkloads) {
  for (const char *Name : {"MDG", "ear", "dnasa7"}) {
    lang::Program P = driver::parseWorkload(*driver::findWorkload(Name));
    lang::EvalResult Ref = lang::evalProgram(P);
    driver::CompileOptions O;
    O.Balance.BalanceFixedOps = true;
    O.UnrollFactor = 4;
    driver::CompileResult C = driver::compileProgram(P, O);
    ASSERT_TRUE(C.ok()) << Name << ": " << C.Error;
    EXPECT_EQ(interpret(C.M).Checksum, Ref.Checksum) << Name;
  }
}

//===----------------------------------------------------------------------===//
// 3. Hybrid per-block scheduler choice
//===----------------------------------------------------------------------===//

namespace {

/// Builds a tiny region with the given number of unknown loads and FDivs.
std::vector<Instr> makeRegion(Function &F, int Loads, int Divs) {
  std::vector<Instr> Out;
  Reg Base = F.makeReg(RegClass::Int);
  for (int K = 0; K != Loads; ++K) {
    Instr I;
    I.Op = Opcode::FLoad;
    I.Dst = F.makeReg(RegClass::Fp);
    I.Base = Base;
    I.Offset = K * 8;
    I.Mem.ArrayId = 0;
    Out.push_back(I);
  }
  Reg X = F.makeReg(RegClass::Fp);
  for (int K = 0; K != Divs; ++K) {
    Instr I;
    I.Op = Opcode::FDiv;
    I.Dst = X;
    I.SrcA = X;
    I.SrcB = X;
    Out.push_back(I);
  }
  Instr T;
  T.Op = Opcode::Ret;
  Out.push_back(T);
  return Out;
}

} // namespace

TEST(Hybrid, PicksBalancedForLoadHeavyRegions) {
  Function F;
  std::vector<Instr> Region = makeRegion(F, /*Loads=*/6, /*Divs=*/0);
  std::vector<const Instr *> Ptrs;
  for (const Instr &I : Region)
    Ptrs.push_back(&I);
  EXPECT_EQ(effectiveKind(SchedulerKind::Hybrid, Ptrs),
            SchedulerKind::Balanced);
}

TEST(Hybrid, PicksTraditionalForDivideHeavyRegions) {
  Function F;
  std::vector<Instr> Region = makeRegion(F, /*Loads=*/1, /*Divs=*/3);
  std::vector<const Instr *> Ptrs;
  for (const Instr &I : Region)
    Ptrs.push_back(&I);
  EXPECT_EQ(effectiveKind(SchedulerKind::Hybrid, Ptrs),
            SchedulerKind::Traditional);
}

TEST(Hybrid, NonHybridKindsPassThrough) {
  Function F;
  std::vector<Instr> Region = makeRegion(F, 1, 3);
  std::vector<const Instr *> Ptrs;
  for (const Instr &I : Region)
    Ptrs.push_back(&I);
  EXPECT_EQ(effectiveKind(SchedulerKind::Balanced, Ptrs),
            SchedulerKind::Balanced);
  EXPECT_EQ(effectiveKind(SchedulerKind::Traditional, Ptrs),
            SchedulerKind::Traditional);
}

TEST(Hybrid, SemanticsPreservedAcrossWorkloads) {
  for (const char *Name : {"MDG", "ARC2D", "spice2g6", "ora"}) {
    lang::Program P = driver::parseWorkload(*driver::findWorkload(Name));
    lang::EvalResult Ref = lang::evalProgram(P);
    driver::CompileOptions O;
    O.Scheduler = SchedulerKind::Hybrid;
    O.UnrollFactor = 4;
    driver::CompileResult C = driver::compileProgram(P, O);
    ASSERT_TRUE(C.ok()) << Name << ": " << C.Error;
    EXPECT_EQ(interpret(C.M).Checksum, Ref.Checksum) << Name;
  }
}

TEST(Hybrid, TagSpellsHY) {
  driver::CompileOptions O;
  O.Scheduler = SchedulerKind::Hybrid;
  EXPECT_EQ(O.tag(), "HY");
}
