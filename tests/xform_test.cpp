//===- tests/xform_test.cpp - Unrolling / peeling tests -------------------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::lang;
using namespace bsched::xform;

namespace {

Program parseOk(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

/// Checks that a transformed program still evaluates (AST oracle) and lowers
/// + interprets to the same checksum as the original.
void expectSemanticsPreserved(const Program &Original,
                              Program &Transformed) {
  EvalResult Ref = evalProgram(Original);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  ASSERT_EQ(checkProgram(Transformed), "");
  EvalResult Ast = evalProgram(Transformed);
  ASSERT_TRUE(Ast.ok()) << Ast.Error;
  EXPECT_EQ(Ast.Checksum, Ref.Checksum) << printProgram(Transformed);
  lower::LowerResult LR = lower::lowerProgram(Transformed);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  ir::InterpResult IR = ir::interpret(LR.M);
  ASSERT_TRUE(IR.Finished);
  EXPECT_EQ(IR.Checksum, Ref.Checksum);
}

} // namespace

TEST(Unroll, PreservesSemanticsExactMultiple) {
  Program P = parseOk("array A[32] output;\n"
                      "for (i = 0; i < 32; i += 1) { A[i] = i * 2 + 1; }\n");
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 4);
  EXPECT_EQ(S.LoopsUnrolled, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Unroll, PreservesSemanticsWithRemainder) {
  for (int N : {1, 2, 3, 5, 7, 30, 31, 33}) {
    Program P = parseOk("array A[40] output;\nvar s = 0.0;\n"
                        "for (i = 0; i < " + std::to_string(N) +
                        "; i += 1) { A[i] = i + 0.5; s = s + A[i]; }\n"
                        "A[39] = s;\n");
    Program Q = P;
    unrollLoops(Q, 4);
    expectSemanticsPreserved(P, Q);
  }
}

TEST(Unroll, FactorEight) {
  Program P = parseOk("array A[50] output;\n"
                      "for (i = 0; i < 43; i += 1) { A[i] = i; }\n");
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 8);
  EXPECT_EQ(S.LoopsFullyUnrolled, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Unroll, NonUnitStep) {
  Program P = parseOk("array A[64] output;\n"
                      "for (i = 0; i < 61; i += 3) { A[i] = i; }\n");
  Program Q = P;
  unrollLoops(Q, 4);
  expectSemanticsPreserved(P, Q);
}

TEST(Unroll, DynamicBounds) {
  Program P = parseOk("array A[64] output;\nvar n int = 37;\nvar b int = 3;\n"
                      "for (i = b; i < n; i += 1) { A[i] = i * i; }\n");
  Program Q = P;
  unrollLoops(Q, 4);
  expectSemanticsPreserved(P, Q);
}

TEST(Unroll, OnlyInnermostLoopsUnroll) {
  Program P = parseOk("array A[8][8] output;\n"
                      "for (i = 0; i < 8; i += 1) {\n"
                      "  for (j = 0; j < 8; j += 1) { A[i][j] = i + j; }\n"
                      "}\n");
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 4);
  EXPECT_EQ(S.LoopsConsidered, 1) << "only the j loop is innermost";
  EXPECT_EQ(S.LoopsUnrolled, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Unroll, SkipsLoopsWithTwoNonPredicableBranches) {
  Program P = parseOk(R"(
array A[16] output;
for (i = 0; i < 16; i += 1) {
  if (i < 4) { A[i] = 1.0; }
  if (i > 8) { A[i] = 2.0; }
}
)");
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 4);
  EXPECT_EQ(S.LoopsSkippedBranches, 1);
  EXPECT_EQ(S.LoopsUnrolled, 0);
}

TEST(Unroll, PredicableBranchesDoNotGateUnrolling) {
  // Both conditionals can become conditional moves, so the loop unrolls
  // (section 4.2 footnote 2).
  Program P = parseOk(R"(
array A[16] output;
var t = 0.0;
var u = 0.0;
for (i = 0; i < 16; i += 1) {
  if (i < 4) { t = 1.0; } else { t = 2.0; }
  if (i > 8) { u = 3.0; }
  A[i] = t + u;
}
)");
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 4);
  EXPECT_EQ(S.LoopsUnrolled, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Unroll, InstructionLimitClampsFactor) {
  // A large body: cost > 16 means factor 4 would exceed 64 instructions and
  // must be clamped (partially unrolled), mirroring swm256's behaviour.
  std::string Body;
  for (int K = 0; K != 4; ++K)
    Body += "  A[i] = A[i] + B[i] * " + std::to_string(K) + ".5;\n";
  Program P = parseOk("array A[32] output;\narray B[32];\n"
                      "for (i = 0; i < 32; i += 1) {\n" + Body + "}\n");
  Program Q = P;
  UnrollStats S4 = unrollLoops(Q, 4);
  EXPECT_EQ(S4.LoopsUnrolled, 1);
  EXPECT_EQ(S4.LoopsFullyUnrolled, 0) << "factor must be clamped below 4";
  expectSemanticsPreserved(P, Q);

  // The higher limit at factor 8 allows more unrolling than at 4.
  Program Q8 = P;
  UnrollStats S8 = unrollLoops(Q8, 8);
  EXPECT_EQ(S8.LoopsUnrolled, 1);
  expectSemanticsPreserved(P, Q8);
}

TEST(Unroll, HugeBodyDisablesUnrolling) {
  std::string Body;
  for (int K = 0; K != 40; ++K)
    Body += "  A[i] = A[i] + " + std::to_string(K) + ".0;\n";
  Program P = parseOk("array A[8] output;\n"
                      "for (i = 0; i < 8; i += 1) {\n" + Body + "}\n");
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 4);
  EXPECT_EQ(S.LoopsSkippedSize, 1);
  EXPECT_EQ(S.LoopsUnrolled, 0);
}

TEST(Unroll, CopyCallbackSeesEveryCopy) {
  Program P = parseOk("array A[32] output;\n"
                      "for (i = 0; i < 30; i += 1) { A[i] = i; }\n");
  std::vector<int> Copies;
  bool Changed = unrollForStmt(P, P.Body, 0, 4,
                               [&](int K, StmtList &) { Copies.push_back(K); });
  ASSERT_TRUE(Changed);
  // 4 main copies (0..3), then the remainder chain copies; the chain is
  // built innermost-first, so its callbacks arrive as 2, 1, 0. Only the
  // copy index matters for marking, not the call order.
  EXPECT_EQ(Copies, (std::vector<int>{0, 1, 2, 3, 2, 1, 0}));
}

TEST(Unroll, MarksMainLoopNoUnroll) {
  Program P = parseOk("array A[32] output;\n"
                      "for (i = 0; i < 32; i += 1) { A[i] = i; }\n");
  unrollLoops(P, 4);
  int ForCount = 0;
  for (const StmtPtr &S : P.Body)
    if (S->Kind == StmtKind::For) {
      ++ForCount;
      EXPECT_TRUE(S->NoUnroll);
    }
  EXPECT_EQ(ForCount, 1);
  // A second unrolling pass is a no-op.
  Program Q = P;
  UnrollStats S = unrollLoops(Q, 4);
  EXPECT_EQ(S.LoopsUnrolled, 0);
}

TEST(Peel, PreservesSemantics) {
  for (int N : {0, 1, 2, 9}) {
    Program P = parseOk("array A[16] output;\nvar s = 0.0;\n"
                        "for (i = 0; i < " + std::to_string(N) +
                        "; i += 1) { s = s + i; A[i] = s; }\n");
    Program Q = P;
    ASSERT_TRUE(peelFirstIteration(Q, Q.Body, 0));
    expectSemanticsPreserved(P, Q);
  }
}

TEST(Peel, ProducesGuardAndResidualLoop) {
  Program P = parseOk("array A[8] output;\n"
                      "for (i = 0; i < 8; i += 1) { A[i] = i; }\n");
  ASSERT_TRUE(peelFirstIteration(P, P.Body, 0));
  ASSERT_EQ(P.Body.size(), 2u);
  EXPECT_EQ(P.Body[0]->Kind, StmtKind::If);
  EXPECT_EQ(P.Body[1]->Kind, StmtKind::For);
  // Residual loop starts at lo + step.
  std::string S = printStmt(*P.Body[1]);
  EXPECT_NE(S.find("i = (0 + 1)"), std::string::npos) << S;
}

TEST(Peel, CallbackSeesPeeledCopy) {
  Program P = parseOk("array A[8] output;\n"
                      "for (i = 0; i < 8; i += 1) { A[i] = i; }\n");
  bool Called = false;
  peelFirstIteration(P, P.Body, 0, [&](StmtList &Peeled) {
    Called = true;
    EXPECT_EQ(Peeled.size(), 1u);
  });
  EXPECT_TRUE(Called);
}

TEST(Unroll, NestedLoopProgramEndToEnd) {
  Program P = parseOk(R"(
array A[12][12];
array C[12][12] output;
for (i = 0; i < 12; i += 1) {
  for (j = 0; j < 12; j += 1) { A[i][j] = i * 3 - j; }
}
for (i = 0; i < 12; i += 1) {
  for (j = 0; j < 11; j += 1) { C[i][j] = A[i][j] + A[i][j + 1]; }
}
)");
  for (int F : {2, 4, 8}) {
    Program Q = P;
    UnrollStats S = unrollLoops(Q, F);
    EXPECT_EQ(S.LoopsUnrolled, 2) << "factor " << F;
    expectSemanticsPreserved(P, Q);
  }
}
