//===- tests/TestConfigs.h - Shared differential-test configs ---*- C++ -*-===//
//
// The compile configurations and machine models the differential tests
// sweep. Three tests used to carry hand-copied variants of these lists
// (fuzz_test, sim_equivalence_test, golden_sim_test); the canonical copies
// now live in src/fuzz/Configs.{h,cpp} so the coverage-guided fuzzer runs
// the exact same matrix, and this header just re-exports them under the
// names the tests use.
//
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_TESTS_TESTCONFIGS_H
#define BALSCHED_TESTS_TESTCONFIGS_H

#include "fuzz/Configs.h"

namespace bsched {
namespace test {

/// Compiler configurations that exercise distinct code paths; every entry
/// keeps VerifyPasses on. See fuzz::differentialCompileConfigs().
inline std::vector<driver::CompileOptions> fuzzConfigs() {
  return fuzz::differentialCompileConfigs();
}

using fuzz::MachinePoint;

/// Machine models the FuzzSim-style twin-equivalence sweeps run under.
inline std::vector<MachinePoint> simDifferentialMachines() {
  return fuzz::differentialMachinePoints();
}

/// Machine models whose per-workload statistics golden_sim_test pins.
inline std::vector<MachinePoint> goldenSimMachines() {
  return fuzz::goldenMachinePoints();
}

} // namespace test
} // namespace bsched

#endif // BALSCHED_TESTS_TESTCONFIGS_H
