//===- tests/TestConfigs.h - Shared differential-test configs ---*- C++ -*-===//
//
// The compile configurations and machine models the differential tests
// sweep. Three tests used to carry hand-copied variants of these lists
// (fuzz_test, sim_equivalence_test, golden_sim_test); the canonical copies
// now live in src/fuzz/Configs.{h,cpp} so the coverage-guided fuzzer runs
// the exact same matrix, and this header just re-exports them under the
// names the tests use.
//
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_TESTS_TESTCONFIGS_H
#define BALSCHED_TESTS_TESTCONFIGS_H

#include "fuzz/Configs.h"

namespace bsched {
namespace test {

/// Compiler configurations that exercise distinct code paths; every entry
/// keeps VerifyPasses on. See fuzz::differentialCompileConfigs().
inline std::vector<driver::CompileOptions> fuzzConfigs() {
  return fuzz::differentialCompileConfigs();
}

/// UseEstimatedProfile twins of the trace-scheduling entries in \p Cs: the
/// same configuration matrix with the interpreter-derived profile swapped
/// for the static estimate (trace::estimateProfile). Non-trace entries are
/// skipped — without trace formation the profile is never consulted, so an
/// estimated variant would compile byte-identically to its base config.
inline std::vector<driver::CompileOptions>
estimatedProfileVariants(const std::vector<driver::CompileOptions> &Cs) {
  std::vector<driver::CompileOptions> Out;
  for (const driver::CompileOptions &C : Cs) {
    if (!C.TraceScheduling)
      continue;
    driver::CompileOptions E = C;
    E.UseEstimatedProfile = true;
    Out.push_back(E);
  }
  return Out;
}

using fuzz::MachinePoint;

/// Machine models the FuzzSim-style twin-equivalence sweeps run under.
inline std::vector<MachinePoint> simDifferentialMachines() {
  return fuzz::differentialMachinePoints();
}

/// Machine models whose per-workload statistics golden_sim_test pins.
inline std::vector<MachinePoint> goldenSimMachines() {
  return fuzz::goldenMachinePoints();
}

} // namespace test
} // namespace bsched

#endif // BALSCHED_TESTS_TESTCONFIGS_H
