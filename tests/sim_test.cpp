//===- tests/sim_test.cpp - Timing simulator tests ------------------------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "regalloc/LinearScan.h"
#include "sched/Schedule.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sim;

namespace {

/// Parses, lowers, schedules, allocates; returns the runnable module.
Module compile(const std::string &Src,
               sched::SchedulerKind K = sched::SchedulerKind::Balanced) {
  lang::ParseResult PR = lang::parseProgram(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  EXPECT_EQ(lang::checkProgram(PR.Prog), "");
  lower::LowerResult LR = lower::lowerProgram(PR.Prog);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  sched::scheduleFunction(LR.M, K);
  regalloc::RegAllocStats S = regalloc::allocateRegisters(LR.M);
  EXPECT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(verify(LR.M), "");
  return std::move(LR.M);
}

const char *StreamKernel = R"(
array A[4096];
array B[4096] output;
for (i = 0; i < 4096; i += 1) { A[i] = i * 0.5; }
for (i = 0; i < 4096; i += 1) { B[i] = A[i] * 2.0 + 1.0; }
)";

const char *TinyKernel = R"(
array Out[4] output;
Out[0] = 1.5;
Out[1] = 2.5;
)";

} // namespace

TEST(Sim, MatchesInterpreterChecksum) {
  Module M = compile(StreamKernel);
  uint64_t Ref = interpret(M).Checksum;
  SimResult R = simulate(M);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Checksum, Ref);
}

TEST(Sim, RequiresAllocatedCode) {
  lang::ParseResult PR = lang::parseProgram(TinyKernel);
  ASSERT_TRUE(PR.ok());
  ASSERT_EQ(lang::checkProgram(PR.Prog), "");
  lower::LowerResult LR = lower::lowerProgram(PR.Prog);
  ASSERT_TRUE(LR.ok());
  SimResult R = simulate(LR.M); // still virtual registers
  EXPECT_FALSE(R.ok());
}

TEST(Sim, CycleCountExceedsInstructionCount) {
  Module M = compile(StreamKernel);
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  EXPECT_GT(R.Cycles, R.Counts.total());
}

TEST(Sim, InstructionMixIsPlausible) {
  Module M = compile(StreamKernel);
  SimResult R = simulate(M);
  // Two 4096-iteration loops: >= 8192 stores, >= 4096 loads, branches for
  // every iteration.
  EXPECT_GE(R.Counts.Stores, 8192u);
  EXPECT_GE(R.Counts.Loads, 4096u);
  EXPECT_GE(R.Counts.Branches, 8192u);
  EXPECT_GT(R.Counts.ShortFp, 0u);
}

TEST(Sim, ColdCachesMissThenReuseHits) {
  Module M = compile(StreamKernel);
  SimResult R = simulate(M);
  // 4096 doubles = 1024 lines touched twice (write then read) while 8KB L1
  // holds only 256 lines: substantial misses, but spatial locality bounds
  // the rate around 1/4 per sweep.
  EXPECT_GT(R.L1D.Misses, 1000u);
  // Write-around stores miss the L1 tag check every sweep, so the combined
  // rate is high; spatial reuse still keeps it below the all-miss bound.
  EXPECT_LT(R.L1D.missRate(), 0.9);
  EXPECT_GT(R.L2.Accesses, 0u);
}

TEST(Sim, SmallFootprintMostlyHits) {
  Module M = compile(R"(
array A[64] output;
for (r = 0; r < 50; r += 1) {
  for (i = 0; i < 64; i += 1) { A[i] = A[i] + 1.0; }
}
)");
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  EXPECT_LT(R.L1D.missRate(), 0.01) << "64 doubles fit the 8KB L1";
}

TEST(Sim, LoadInterlocksAttributedToLoads) {
  // A pointer-chase style serial dependence on loads: virtually every load's
  // consumer stalls.
  Module M = compile(R"(
array A[8192];
array Out[4] output;
var s = 0.0;
for (i = 0; i < 8192; i += 1) { A[i] = 1.0; }
for (r = 0; r < 4; r += 1) {
  for (i = 0; i < 8192; i += 1) { s = s + A[i]; }
}
Out[0] = s;
)");
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  EXPECT_GT(R.LoadInterlockCycles, 0u);
}

TEST(Sim, FixedInterlocksFromDivideChains) {
  Module M = compile(R"(
array Out[4] output;
var x = 1234.5;
for (i = 0; i < 1000; i += 1) { x = x / 1.0001; }
Out[0] = x;
)");
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  // A serial divide chain: ~30 cycles per iteration are fixed interlocks.
  EXPECT_GT(R.FixedInterlockCycles, 20000u);
  EXPECT_GT(R.Counts.LongFp, 999u);
}

TEST(Sim, BranchPredictorLearnsLoops) {
  Module M = compile(StreamKernel);
  SimResult R = simulate(M);
  // Loop back edges are overwhelmingly taken: mispredict rate must be tiny.
  EXPECT_LT(static_cast<double>(R.BranchMispredicts) /
                static_cast<double>(R.Counts.Branches),
            0.05);
}

TEST(Sim, AlternatingBranchMispredicts) {
  Module M = compile(R"(
array A[1024] output;
var t = 0.0;
for (i = 0; i < 1024; i += 1) {
  if (A[i] < -1.0) { A[i] = t; t = t + 1.0; } else { A[0] = t; }
}
)");
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  EXPECT_GT(R.Counts.Branches, 1024u);
}

TEST(Sim, DTlbMissesOnLargeStrides) {
  // Touch one element per 8KB page across a 4MB array: every access is a new
  // page, blowing the 64-entry DTLB.
  Module M = compile(R"(
array A[524288];
array Out[4] output;
var s = 0.0;
for (r = 0; r < 3; r += 1) {
  for (i = 0; i < 512; i += 1) { s = s + A[i * 1024]; }
}
Out[0] = s;
)");
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  EXPECT_GT(R.DTlbMisses, 1000u);
  EXPECT_GT(R.DTlbStallCycles, 0u);
}

TEST(Sim, MemoryLatencyBoundsLoadLatency) {
  // A huge array streamed once: misses go to memory (50 cycles); total
  // cycles per element must stay far below worst case thanks to
  // non-blocking overlap but above the hit-only bound.
  Module M = compile(R"(
array A[262144];
array Out[4] output;
var s = 0.0;
for (i = 0; i < 131072; i += 8) { s = s + A[i * 2]; }
Out[0] = s;
)");
  SimResult R = simulate(M);
  ASSERT_TRUE(R.Finished);
  EXPECT_GT(R.L3.Accesses, 0u);
}

TEST(Sim, SimpleModelRunsAndMatchesChecksum) {
  Module M = compile(StreamKernel);
  uint64_t Ref = interpret(M).Checksum;
  MachineConfig C;
  C.SimpleModel = true;
  C.SimpleHitRate = 0.8;
  SimResult R = simulate(M, C);
  ASSERT_TRUE(R.Finished);
  EXPECT_EQ(R.Checksum, Ref);
  EXPECT_EQ(R.ICacheStallCycles, 0u);
  EXPECT_EQ(R.DTlbMisses, 0u);
  EXPECT_EQ(R.BranchPenaltyCycles, 0u);
}

TEST(Sim, SimpleModelHitRateMatters) {
  Module M = compile(StreamKernel);
  MachineConfig C95;
  C95.SimpleModel = true;
  C95.SimpleHitRate = 0.95;
  MachineConfig C50 = C95;
  C50.SimpleHitRate = 0.50;
  SimResult R95 = simulate(M, C95);
  SimResult R50 = simulate(M, C50);
  EXPECT_GT(R50.Cycles, R95.Cycles);
}

TEST(Sim, SimpleModelIsDeterministic) {
  Module M = compile(StreamKernel);
  MachineConfig C;
  C.SimpleModel = true;
  EXPECT_EQ(simulate(M, C).Cycles, simulate(M, C).Cycles);
}

TEST(Sim, CycleBudgetStopsRunaway) {
  Module M = compile(StreamKernel);
  SimResult R = simulate(M, MachineConfig{}, /*MaxCycles=*/1000);
  EXPECT_FALSE(R.Finished);
  EXPECT_TRUE(R.ok());
}

TEST(Sim, BalancedBeatsTraditionalOnMissHeavyStreams) {
  // The headline effect: a kernel with load-level parallelism and real
  // misses should run at least as fast under balanced scheduling.
  const char *Src = R"(
array A[65536];
array B[65536];
array Out[8] output;
var s = 0.0;
var t = 0.0;
for (i = 0; i < 65536; i += 1) { A[i] = i * 0.5; B[i] = i * 0.25; }
for (i = 0; i < 65528; i += 1) {
  s = s + A[i] * 2.0 + B[i + 7] * 3.0 + A[i + 3];
  t = t * 1.0000001 + s;
}
Out[0] = s + t;
)";
  Module MB = compile(Src, sched::SchedulerKind::Balanced);
  Module MT = compile(Src, sched::SchedulerKind::Traditional);
  SimResult RB = simulate(MB);
  SimResult RT = simulate(MT);
  ASSERT_TRUE(RB.Finished);
  ASSERT_TRUE(RT.Finished);
  EXPECT_EQ(RB.Checksum, RT.Checksum);
  EXPECT_LE(RB.LoadInterlockCycles, RT.LoadInterlockCycles);
}

//===----------------------------------------------------------------------===//
// Configuration validation (negative paths)
//===----------------------------------------------------------------------===//
//
// Malformed configurations used to be undefined behaviour (a zero-set cache
// divides by zero in the set index; a zero-entry predictor indexes mod 0).
// simulate() now validates up front and returns SimResult::Error for both
// simulator cores.

namespace {

/// Expects simulate() under both cores to reject \p C with a validation
/// error rather than faulting.
void expectRejected(const MachineConfig &C, const char *What) {
  EXPECT_NE(validateMachineConfig(C), "") << What;
  Module M = compile(TinyKernel);
  for (SimImpl Impl : {SimImpl::Fast, SimImpl::Reference}) {
    MachineConfig WithImpl = C;
    WithImpl.Impl = Impl;
    SimResult R = simulate(M, WithImpl);
    EXPECT_FALSE(R.ok()) << What;
    EXPECT_NE(R.Error.find("invalid machine configuration"), std::string::npos)
        << What << ": " << R.Error;
    EXPECT_FALSE(R.Finished);
  }
}

} // namespace

TEST(SimConfig, DefaultsAreValid) {
  EXPECT_EQ(validateMachineConfig(MachineConfig{}), "");
}

TEST(SimConfig, ZeroSetCacheRejected) {
  // SizeBytes < LineSize * Assoc leaves zero sets: the set index would be
  // a modulo by zero on the first access.
  MachineConfig C;
  C.L1D.SizeBytes = 16; // one 32-byte line does not fit
  expectRejected(C, "zero-set L1D");
}

TEST(SimConfig, ZeroLineSizeRejected) {
  MachineConfig C;
  C.L2.LineSize = 0;
  expectRejected(C, "zero line size");
}

TEST(SimConfig, ZeroAssocRejected) {
  MachineConfig C;
  C.L3.Assoc = 0;
  expectRejected(C, "zero associativity");
}

TEST(SimConfig, ZeroLatencyCacheRejected) {
  MachineConfig C;
  C.L1I.Latency = 0;
  expectRejected(C, "zero cache latency");
}

TEST(SimConfig, ZeroEntryBranchPredictorRejected) {
  // Counter lookup is (Addr >> 2) % entries: mod zero.
  MachineConfig C;
  C.BranchPredictorEntries = 0;
  expectRejected(C, "zero-entry predictor");
}

TEST(SimConfig, ZeroEntryTlbRejected) {
  MachineConfig C;
  C.DTlbEntries = 0;
  expectRejected(C, "zero-entry DTLB");
  MachineConfig C2;
  C2.ITlbEntries = 0;
  expectRejected(C2, "zero-entry ITLB");
}

TEST(SimConfig, ZeroPageSizeRejected) {
  MachineConfig C;
  C.PageSize = 0;
  expectRejected(C, "zero page size");
}

TEST(SimConfig, ZeroMshrsRejected) {
  MachineConfig C;
  C.NumMSHRs = 0;
  expectRejected(C, "zero MSHRs");
}

TEST(SimConfig, ZeroWriteBufferRejected) {
  MachineConfig C;
  C.WriteBufferEntries = 0;
  expectRejected(C, "zero write-buffer entries");
}

TEST(SimConfig, ZeroIssueWidthRejected) {
  MachineConfig C;
  C.IssueWidth = 0;
  expectRejected(C, "zero issue width");
}

TEST(SimConfig, ZeroPerClassLimitRejectedWhenSuperscalar) {
  MachineConfig C;
  C.IssueWidth = 2;
  C.MaxMemPerCycle = 0;
  expectRejected(C, "zero per-class limit at width 2");
  // At width 1 the per-class limits are unused, so the same value is fine.
  MachineConfig C1 = C;
  C1.IssueWidth = 1;
  EXPECT_EQ(validateMachineConfig(C1), "");
}

TEST(SimConfig, SimpleModelLatenciesValidated) {
  MachineConfig C;
  C.SimpleModel = true;
  C.SimpleMissLatency = 0;
  expectRejected(C, "zero simple-model miss latency");
}

TEST(SimConfig, NegativeLatenciesRejected) {
  MachineConfig C;
  C.MemoryLatency = 0;
  expectRejected(C, "zero memory latency");
  MachineConfig C2;
  C2.TlbRefillLatency = -1;
  expectRejected(C2, "negative TLB refill");
  MachineConfig C3;
  C3.BranchMispredictPenalty = -1;
  expectRejected(C3, "negative mispredict penalty");
}

TEST(SimConfig, ReferenceImplSelectable) {
  // The seed simulator stays selectable (the twin pattern): same checksum,
  // same cycle count as the fast core on a real workload.
  Module M = compile(StreamKernel);
  MachineConfig Ref;
  Ref.Impl = SimImpl::Reference;
  SimResult RR = simulate(M, Ref);
  SimResult RF = simulate(M, MachineConfig{});
  ASSERT_TRUE(RR.Finished);
  ASSERT_TRUE(RF.Finished);
  EXPECT_EQ(RR.Checksum, RF.Checksum);
  EXPECT_EQ(RR.Cycles, RF.Cycles);
}

TEST(Sim, StatsAreInternallyConsistent) {
  Module M = compile(StreamKernel);
  SimResult R = simulate(M);
  uint64_t Stalls = R.LoadInterlockCycles + R.FixedInterlockCycles +
                    R.ICacheStallCycles + R.ITlbStallCycles +
                    R.DTlbStallCycles + R.BranchPenaltyCycles +
                    R.MshrStallCycles + R.WriteBufferStallCycles;
  EXPECT_EQ(R.Cycles, R.Counts.total() + Stalls)
      << "every cycle is an issue slot or an attributed stall";
}
