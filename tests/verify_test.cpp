//===- tests/verify_test.cpp - Static verifier subsystem tests -------------===//
//
// Two halves:
//  - Positive: the real pipeline, over all 17 workloads and every fuzzing
//    configuration, must produce zero diagnostics (the verifier is wired
//    into driver::compileProgram and a diagnostic is a hard compile error).
//  - Negative: hand-constructed illegal modules must make each check fire
//    with a diagnostic localized to the offending block/instruction. These
//    prove the verifier is not vacuously happy.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "ir/IRParser.h"
#include "verify/Verify.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::verify;

namespace {

/// Same configuration matrix as fuzz_test.cpp.
std::vector<driver::CompileOptions> allConfigs() {
  std::vector<driver::CompileOptions> Cs;
  for (auto Kind : {sched::SchedulerKind::Traditional,
                    sched::SchedulerKind::Balanced}) {
    auto Add = [&](int LU, bool TrS, bool LA) {
      driver::CompileOptions O;
      O.Scheduler = Kind;
      O.UnrollFactor = LU;
      O.TraceScheduling = TrS;
      O.LocalityAnalysis = LA;
      Cs.push_back(O);
    };
    Add(1, false, false);
    Add(4, false, false);
    Add(8, true, true);
  }
  driver::CompileOptions Est;
  Est.TraceScheduling = true;
  Est.UseEstimatedProfile = true;
  Est.UnrollFactor = 4;
  Cs.push_back(Est);
  driver::CompileOptions Hy;
  Hy.Scheduler = sched::SchedulerKind::Hybrid;
  Cs.push_back(Hy);
  driver::CompileOptions Plain;
  Plain.Lower.StrengthReduction = false;
  Plain.Lower.IfConversion = false;
  Cs.push_back(Plain);
  driver::CompileOptions Tight;
  Tight.UnrollFactor = 4;
  Tight.RegAlloc.AllocatablePerClass = 6;
  Cs.push_back(Tight);
  driver::CompileOptions Spill;
  Spill.UnrollFactor = 8;
  Spill.TraceScheduling = true;
  Spill.RegAlloc.AllocatablePerClass = 4;
  Cs.push_back(Spill);
  return Cs;
}

Module parse(const char *Text) {
  ParseIRResult R = parseModule(Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

/// True if any diagnostic of \p Kind mentions \p Needle and (when >= 0)
/// points at \p Block.
bool hasDiag(const VerifyResult &R, Check Kind, const std::string &Needle,
             int Block = -1) {
  return std::any_of(R.Diags.begin(), R.Diags.end(), [&](const Diagnostic &D) {
    return D.Kind == Kind &&
           D.Message.find(Needle) != std::string::npos &&
           (Block < 0 || D.Block == Block);
  });
}

} // namespace

//===----------------------------------------------------------------------===//
// Positive: real pipeline output verifies clean everywhere.
//===----------------------------------------------------------------------===//

TEST(VerifyPipeline, AllWorkloadsAllConfigsZeroDiagnostics) {
  for (const driver::Workload &W : driver::workloads()) {
    lang::Program P = driver::parseWorkload(W);
    for (const driver::CompileOptions &Opts : allConfigs()) {
      driver::CompileResult C = driver::compileProgram(P, Opts);
      std::string DiagText;
      for (const Diagnostic &D : C.VerifyDiags)
        DiagText += toString(D) + "\n";
      ASSERT_TRUE(C.VerifyDiags.empty())
          << W.Name << " [" << Opts.tag() << "]:\n" << DiagText;
      ASSERT_TRUE(C.ok()) << W.Name << " [" << Opts.tag() << "]: " << C.Error;
    }
  }
}

//===----------------------------------------------------------------------===//
// Negative: block-local scheduling checks.
//===----------------------------------------------------------------------===//

namespace {

const char *StraightLine = "func f\n"
                           "b0:\n"
                           "  ldi v0, 1\n"
                           "  add v1, v0, #1\n"
                           "  add v2, v1, #2\n"
                           "  ret\n";

} // namespace

TEST(VerifySchedule, LegalPermutationIsClean) {
  Module B = parse(StraightLine);
  Module A = B;
  // add v2 depends on add v1; ldi v0 may not move below its use. The only
  // legal non-identity permutation here is... none, so test identity.
  EXPECT_TRUE(verifySchedule(B, A).ok());
}

TEST(VerifySchedule, DependenceInversionCaught) {
  Module B = parse(StraightLine);
  Module A = B;
  // Schedule the consumer above its producer.
  std::swap(A.Fn.Blocks[0].Instrs[0], A.Fn.Blocks[0].Instrs[1]);
  VerifyResult R = verifySchedule(B, A);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Schedule, "despite a dependence", 0))
      << R.report();
  EXPECT_EQ(R.Diags.front().Block, 0);
  EXPECT_EQ(R.Diags.front().Instr, 0); // the hoisted consumer's new slot.
}

TEST(VerifySchedule, DroppedInstructionCaught) {
  Module B = parse(StraightLine);
  Module A = B;
  A.Fn.Blocks[0].Instrs.erase(A.Fn.Blocks[0].Instrs.begin() + 2);
  VerifyResult R = verifySchedule(B, A);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Schedule, "dropped", 0)) << R.report();
}

TEST(VerifySchedule, InventedInstructionCaught) {
  Module B = parse(StraightLine);
  Module A = B;
  // Duplicate the first instruction; the second copy matches nothing.
  A.Fn.Blocks[0].Instrs.insert(A.Fn.Blocks[0].Instrs.begin(),
                               A.Fn.Blocks[0].Instrs[0]);
  VerifyResult R = verifySchedule(B, A);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Schedule, "not present", 0)) << R.report();
}

TEST(VerifySchedule, DisplacedTerminatorCaught) {
  Module B = parse("func f\n"
                   "b0:\n"
                   "  ldi v0, 1\n"
                   "  ldi v1, 2\n"
                   "  ret\n");
  Module A = B;
  std::rotate(A.Fn.Blocks[0].Instrs.begin(),
              A.Fn.Blocks[0].Instrs.end() - 1, A.Fn.Blocks[0].Instrs.end());
  VerifyResult R = verifySchedule(B, A);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Schedule, "terminator", 0)) << R.report();
}

TEST(VerifySchedule, StoreLoadReorderCaught) {
  // A load scheduled above a store to a possibly-aliasing address (no
  // affine form in parsed IR, so the pair must be kept in order).
  Module B = parse("array A 4\n"
                   "func f\n"
                   "b0:\n"
                   "  ldi v0, 64\n"
                   "  ldi v1, 9\n"
                   "  st v1, 0(v0)\n"
                   "  ld v2, 0(v0)\n"
                   "  ret\n");
  Module A = B;
  std::swap(A.Fn.Blocks[0].Instrs[2], A.Fn.Blocks[0].Instrs[3]);
  VerifyResult R = verifySchedule(B, A);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Schedule, "despite a dependence", 0))
      << R.report();
}

TEST(VerifySchedule, HitFloatingAboveMissCaught) {
  Module B = parse("array A 4\n"
                   "func f\n"
                   "b0:\n"
                   "  ldi v0, 64\n"
                   "  fld v1, 0(v0)  ; miss\n"
                   "  fld v2, 8(v0)  ; hit\n"
                   "  ret\n");
  B.Fn.Blocks[0].Instrs[1].LocalityGroup = 0;
  B.Fn.Blocks[0].Instrs[2].LocalityGroup = 0;
  Module A = B;
  EXPECT_TRUE(verifySchedule(B, A).ok());
  // Load-load pairs reorder freely, so only the locality contract fires.
  std::swap(A.Fn.Blocks[0].Instrs[1], A.Fn.Blocks[0].Instrs[2]);
  VerifyResult R = verifySchedule(B, A);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Locality, "floated above", 0)) << R.report();
  EXPECT_TRUE(std::all_of(R.Diags.begin(), R.Diags.end(),
                          [](const Diagnostic &D) {
                            return D.Kind == Check::Locality;
                          }))
      << R.report();
}

TEST(VerifyModule, AnnotationOnNonLoadCaught) {
  Module M = parse(StraightLine);
  M.Fn.Blocks[0].Instrs[1].HM = HitMiss::Hit;
  VerifyResult R = verifyModule(M);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Locality, "non-load", 0)) << R.report();
}

//===----------------------------------------------------------------------===//
// Negative: register-allocation checks.
//===----------------------------------------------------------------------===//

namespace {

/// Applies a virtual->physical id mapping to every register operand and
/// prepends the frame-base initialization, producing a "hand-allocated"
/// After module for verifyRegAlloc.
Module handAllocate(const Module &B,
                    const std::vector<std::pair<uint32_t, uint32_t>> &Map) {
  Module A = B;
  auto MapReg = [&](Reg &R) {
    if (!R.isVirtual())
      return;
    for (auto [V, P] : Map)
      if (R.Id == NumPhysTotal + V) {
        R = Reg(P);
        return;
      }
  };
  for (BasicBlock &Blk : A.Fn.Blocks)
    for (Instr &I : Blk.Instrs) {
      MapReg(I.Dst);
      MapReg(I.SrcA);
      MapReg(I.SrcB);
      MapReg(I.SrcC);
      MapReg(I.Base);
    }
  Instr Init;
  Init.Op = Opcode::LdI;
  Init.Dst = physIntReg(regalloc::FrameBaseReg);
  Init.Imm = static_cast<int64_t>(
      A.Arrays[static_cast<size_t>(A.SpillArrayId)].Base);
  Init.HasImm = true;
  A.Fn.Blocks[0].Instrs.insert(A.Fn.Blocks[0].Instrs.begin(), Init);
  return A;
}

const char *TwoValues = "func f\n"
                        "b0:\n"
                        "  ldi v0, 1\n"
                        "  ldi v1, 2\n"
                        "  add v2, v0, v1\n"
                        "  add v2, v2, v2\n"
                        "  ret\n";

} // namespace

TEST(VerifyRegAlloc, LegalHandAllocationIsClean) {
  Module B = parse(TwoValues);
  Module A = handAllocate(B, {{0, 0}, {1, 1}, {2, 2}});
  VerifyResult R = verifyRegAlloc(B, A, 28);
  EXPECT_TRUE(R.ok()) << R.report();
}

TEST(VerifyRegAlloc, InterferenceCaught) {
  Module B = parse(TwoValues);
  // v0 and v1 are simultaneously live; give both r0.
  Module A = handAllocate(B, {{0, 0}, {1, 0}, {2, 2}});
  VerifyResult R = verifyRegAlloc(B, A, 28);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::RegAlloc, "share", 0)) << R.report();
  // Localized: the diagnostic points at the interfering definition.
  auto It = std::find_if(R.Diags.begin(), R.Diags.end(),
                         [](const Diagnostic &D) {
                           return D.Message.find("share") != std::string::npos;
                         });
  ASSERT_NE(It, R.Diags.end());
  EXPECT_EQ(It->Block, 0);
  EXPECT_GE(It->Instr, 0);
}

TEST(VerifyRegAlloc, RestoreFromNeverSpilledSlotCaught) {
  Module B = parse(TwoValues);
  Module A = handAllocate(B, {{0, 0}, {1, 1}, {2, 2}});
  // Reroute the first add's v0 use through a restore of a slot no spill
  // ever wrote.
  Instr Rst;
  Rst.Op = Opcode::Load;
  Rst.Dst = physIntReg(regalloc::SpillScratchRegs[0]);
  Rst.Base = physIntReg(regalloc::FrameBaseReg);
  Rst.Offset = 0;
  Rst.Mem.ArrayId = A.SpillArrayId;
  Rst.Mem.HasForm = true;
  Rst.Mem.Const = 0;
  Rst.IsRestore = true;
  auto &Ins = A.Fn.Blocks[0].Instrs;
  Ins[3].SrcA = Rst.Dst; // add v2, <scratch>, r1
  Ins.insert(Ins.begin() + 3, Rst);
  VerifyResult R = verifyRegAlloc(B, A, 28);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::RegAlloc, "no spill ever wrote", 0))
      << R.report();
}

TEST(VerifyRegAlloc, SurvivingVirtualCaught) {
  Module B = parse(TwoValues);
  Module A = handAllocate(B, {{0, 0}, {1, 1}}); // v2 left unmapped.
  VerifyResult R = verifyRegAlloc(B, A, 28);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::RegAlloc, "still virtual", 0)) << R.report();
}

TEST(VerifyRegAlloc, OutOfBudgetRegisterCaught) {
  Module B = parse(TwoValues);
  // r20 is legal for 28 allocatable registers but not for 6.
  Module A = handAllocate(B, {{0, 0}, {1, 20}, {2, 2}});
  EXPECT_TRUE(verifyRegAlloc(B, A, 28).ok());
  VerifyResult R = verifyRegAlloc(B, A, 6);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::RegAlloc, "outside the allocatable range", 0))
      << R.report();
}

TEST(VerifyRegAlloc, MissingFrameInitCaught) {
  Module B = parse(TwoValues);
  Module A = handAllocate(B, {{0, 0}, {1, 1}, {2, 2}});
  A.Fn.Blocks[0].Instrs.erase(A.Fn.Blocks[0].Instrs.begin());
  VerifyResult R = verifyRegAlloc(B, A, 28);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::RegAlloc, "frame base", 0)) << R.report();
}

//===----------------------------------------------------------------------===//
// Negative: trace-scheduling compensation checks.
//===----------------------------------------------------------------------===//

namespace {

// Diamond-free join: b1 enters the trace {b0, b2} at b2.
const char *JoinBefore = "func f\n"
                         "b0:\n"
                         "  ldi v0, 7\n"
                         "  br v0, b2, b1\n"
                         "b1:\n"
                         "  jmp b2\n"
                         "b2:\n"
                         "  ldi v1, 5\n"
                         "  add v2, v1, #1\n"
                         "  ret\n";

// Legal trace schedule: ldi v1 hoisted from b2 into b0 (it crosses the
// join, so the off-trace edge b1->b2 detours through compensation b3).
const char *JoinAfterLegal = "func f\n"
                             "b0:\n"
                             "  ldi v0, 7\n"
                             "  ldi v1, 5\n"
                             "  br v0, b2, b1\n"
                             "b1:\n"
                             "  jmp b3\n"
                             "b2:\n"
                             "  add v2, v1, #1\n"
                             "  ret\n"
                             "b3:\n"
                             "  ldi v1, 5\n"
                             "  jmp b2\n";

const std::vector<std::vector<int>> JoinTraces = {{0, 2}, {1}};

} // namespace

TEST(VerifyTrace, LegalCompensationIsClean) {
  Module B = parse(JoinBefore);
  Module A = parse(JoinAfterLegal);
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  EXPECT_TRUE(R.ok()) << R.report();
}

TEST(VerifyTrace, MissingCompensationInstrCaught) {
  Module B = parse(JoinBefore);
  Module A = parse(JoinAfterLegal);
  // Gut the compensation block: the crossed ldi copy disappears.
  A.Fn.Blocks[3].Instrs.erase(A.Fn.Blocks[3].Instrs.begin());
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Compensation, "crossed the join", 3))
      << R.report();
}

TEST(VerifyTrace, UnreroutedOffTraceEdgeCaught) {
  Module B = parse(JoinBefore);
  Module A = parse(JoinAfterLegal);
  // b1 jumps straight to the join, skipping its compensation code.
  A.Fn.Blocks[1].Instrs.back().Target0 = 2;
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Compensation, "compensation block", 1))
      << R.report();
}

TEST(VerifyTrace, WrongCompensationContentCaught) {
  Module B = parse(JoinBefore);
  Module A = parse(JoinAfterLegal);
  A.Fn.Blocks[3].Instrs[0].Imm = 6; // copies ldi v1, 6 instead of 5.
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Compensation, "differs from", 3))
      << R.report();
}

TEST(VerifyTrace, StoreSpeculatedAboveSplitCaught) {
  Module B = parse("array A 4\n"
                   "func f\n"
                   "b0:\n"
                   "  ldi v0, 64\n"
                   "  ldi v1, 9\n"
                   "  br v1, b2, b1\n"
                   "b1:\n"
                   "  jmp b2\n"
                   "b2:\n"
                   "  st v1, 0(v0)\n"
                   "  ret\n");
  Module A = parse("array A 4\n"
                   "func f\n"
                   "b0:\n"
                   "  ldi v0, 64\n"
                   "  ldi v1, 9\n"
                   "  st v1, 0(v0)\n"
                   "  br v1, b2, b1\n"
                   "b1:\n"
                   "  jmp b3\n"
                   "b2:\n"
                   "  ret\n"
                   "b3:\n"
                   "  st v1, 0(v0)\n"
                   "  jmp b2\n");
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  ASSERT_FALSE(R.ok());
  // The join compensation is in place; the store is still illegal above
  // the split (the off-trace path must not observe it).
  EXPECT_TRUE(hasDiag(R, Check::Compensation, "speculated above the split", 0))
      << R.report();
}

TEST(VerifyTrace, LiveOutClobberAboveSplitCaught) {
  // v1 is live into the off-trace path (b1 stores it); redefining it above
  // the split clobbers that path.
  Module B = parse("array A 4\n"
                   "func f\n"
                   "b0:\n"
                   "  ldi v0, 64\n"
                   "  ldi v1, 9\n"
                   "  br v1, b2, b1\n"
                   "b1:\n"
                   "  st v1, 0(v0)\n"
                   "  jmp b2\n"
                   "b2:\n"
                   "  ldi v1, 3\n"
                   "  st v1, 8(v0)\n"
                   "  ret\n");
  Module A = B;
  // Hoist "ldi v1, 3" from b2 above b0's branch, with join compensation.
  auto &B0 = A.Fn.Blocks[0].Instrs;
  auto &B2 = A.Fn.Blocks[2].Instrs;
  B0.insert(B0.end() - 1, B2.front());
  B2.erase(B2.begin());
  int Comp = A.Fn.makeBlock();
  Instr Copy;
  Copy.Op = Opcode::LdI;
  Copy.Dst = Reg(NumPhysTotal + 1);
  Copy.Imm = 3;
  Copy.HasImm = true;
  Instr Jmp;
  Jmp.Op = Opcode::Jmp;
  Jmp.Target0 = 2;
  A.Fn.Blocks[Comp].Instrs = {Copy, Jmp};
  A.Fn.Blocks[1].Instrs.back().Target0 = Comp;
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasDiag(R, Check::Compensation, "live into off-trace", 0))
      << R.report();
}

TEST(VerifyTrace, DownwardMotionCaught) {
  Module B = parse(JoinBefore);
  Module A = B;
  // Sink "ldi v0, 7" from b0 below its home terminator, into b2.
  auto &B0 = A.Fn.Blocks[0].Instrs;
  auto &B2 = A.Fn.Blocks[2].Instrs;
  B2.insert(B2.begin(), B0.front());
  B0.erase(B0.begin());
  VerifyResult R = verifyTraceSchedule(B, A, JoinTraces);
  ASSERT_FALSE(R.ok());
  // The branch now reads v0 before any definition reaches it.
  EXPECT_TRUE(hasDiag(R, Check::Compensation, "below its home", 2) ||
              hasDiag(R, Check::Schedule, "despite a dependence", 0))
      << R.report();
}
