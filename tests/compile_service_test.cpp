//===- tests/compile_service_test.cpp - Compile-service concurrency -------===//
//
// Stress tests for the batched, sharded compile service (driver/Experiment,
// driver/ProfileCache, ThreadPool chunked dispatch): many threads hammering
// overlapping keys must produce pointer-stable results, never recompute a
// completed key, and return results byte-identical to a 1-thread run.
//
//===----------------------------------------------------------------------===//

#include "driver/Experiment.h"
#include "driver/ProfileCache.h"
#include "driver/Workloads.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "support/ThreadPool.h"
#include "trace/EstimateProfile.h"

#include <gtest/gtest.h>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

/// Value equality of everything a table consumer reads out of a RunResult.
void expectRunResultsEqual(const RunResult &A, const RunResult &B) {
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_EQ(A.Sim.Cycles, B.Sim.Cycles);
  EXPECT_EQ(A.Sim.Checksum, B.Sim.Checksum);
  EXPECT_EQ(A.Sim.Finished, B.Sim.Finished);
  EXPECT_EQ(A.Sim.LoadInterlockCycles, B.Sim.LoadInterlockCycles);
  EXPECT_EQ(A.Sim.FixedInterlockCycles, B.Sim.FixedInterlockCycles);
  EXPECT_EQ(A.RegAlloc.SpilledVRegs, B.RegAlloc.SpilledVRegs);
  EXPECT_EQ(A.Trace.Traces, B.Trace.Traces);
}

/// Distinct-but-overlapping key set: K pressure-threshold tenants over a few
/// workloads. The thresholds are chosen away from every default used
/// elsewhere so the cache-miss accounting below is exact within this binary.
std::vector<ExperimentJob> tenantJobs() {
  std::vector<ExperimentJob> Jobs;
  const auto &Ws = workloads();
  for (size_t W = 0; W != 3; ++W) {
    for (int T = 61; T != 65; ++T) {
      CompileOptions O;
      O.Scheduler = sched::SchedulerKind::Balanced;
      O.Balance.PressureThreshold = T;
      Jobs.push_back({&Ws[W], O, {}});
    }
  }
  return Jobs;
}

} // namespace

// Hammer runCached from 8 workers with every key requested many times
// concurrently: each completed key is computed exactly once (the miss
// counter moves by exactly the number of distinct keys), every caller gets
// the same stable pointer, and the values are byte-identical to an
// uncached sequential recompute.
TEST(CompileService, OverlappingKeysComputeOnce) {
  std::vector<ExperimentJob> Jobs = tenantJobs();
  const size_t Distinct = Jobs.size();
  const size_t Repeat = 8;

  ResultCacheStats Before = resultCacheStats();
  std::vector<const RunResult *> Ptrs(Distinct * Repeat, nullptr);
  ThreadPool::parallelForChunked(
      8, Ptrs.size(),
      [&](size_t I) {
        const ExperimentJob &J = Jobs[I % Distinct];
        Ptrs[I] = &runCached(*J.W, J.Opts, J.Machine);
      },
      ChunkPolicy::Guided);
  ResultCacheStats After = resultCacheStats();

  // One computation per distinct key; everything else was a hit or an
  // in-flight wait on the first computation, never a recompute.
  EXPECT_EQ(After.Misses - Before.Misses, Distinct);
  EXPECT_EQ((After.Hits - Before.Hits) + (After.InFlightWaits -
                                          Before.InFlightWaits),
            Distinct * Repeat - Distinct);

  // Pointer-stable: all requests for one key resolved to one entry.
  for (size_t I = 0; I != Ptrs.size(); ++I) {
    ASSERT_NE(Ptrs[I], nullptr);
    EXPECT_EQ(Ptrs[I], Ptrs[I % Distinct]) << "request " << I;
  }

  // Byte-identical to an uncached 1-thread recompute.
  for (size_t I = 0; I != Distinct; ++I) {
    RunResult Fresh = runWorkload(*Jobs[I].W, Jobs[I].Opts, Jobs[I].Machine);
    expectRunResultsEqual(*Ptrs[I], Fresh);
  }
}

// runAll returns the same pointers in the same order for any thread count
// and either chunk policy — the byte-identical determinism contract the
// bench sweeps and table binaries rely on.
TEST(CompileService, RunAllIdenticalAcrossThreadsAndPolicies) {
  std::vector<ExperimentJob> Jobs = tenantJobs();

  std::vector<const RunResult *> Seq = runAll(Jobs, 1);
  std::vector<const RunResult *> ParGuided =
      runAll(Jobs, 8, ChunkPolicy::Guided);
  std::vector<const RunResult *> ParStatic =
      runAll(Jobs, 8, ChunkPolicy::Static);
  ASSERT_EQ(Seq.size(), Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    EXPECT_TRUE(Seq[I]->ok()) << Seq[I]->Error;
    EXPECT_EQ(Seq[I], ParGuided[I]) << "job " << I;
    EXPECT_EQ(Seq[I], ParStatic[I]) << "job " << I;
  }
}

// The sharded profile cache under a thundering herd: 8 workers repeatedly
// profiling the same few modules. Each distinct module is interpreted
// exactly once (in-flight dedup), and every returned profile is
// bit-identical to a direct uncached interpretation.
TEST(CompileService, ProfileCacheDedupesInFlight) {
  // A few distinct laid-out modules (different workloads).
  std::vector<ir::Module> Modules;
  const auto &Ws = workloads();
  for (size_t W = 0; W != 4; ++W) {
    lang::Program P = parseWorkload(Ws[W]);
    lower::LowerResult LR = lower::lowerProgram(P, {});
    ASSERT_TRUE(LR.ok()) << LR.Error;
    opt::cleanupModule(LR.M);
    Modules.push_back(std::move(LR.M));
  }

  clearProfileCache();
  const size_t Repeat = 16;
  std::vector<ir::InterpResult> Out(Modules.size() * Repeat);
  ThreadPool::parallelForChunked(
      8, Out.size(),
      [&](size_t I) { Out[I] = profileModule(Modules[I % Modules.size()]); },
      ChunkPolicy::Guided);

  ProfileCacheStats S = profileCacheStats();
  EXPECT_EQ(S.Misses, Modules.size());
  EXPECT_EQ(S.Hits + S.InFlightWaits, Out.size() - Modules.size());

  for (size_t M = 0; M != Modules.size(); ++M) {
    ir::InterpResult Direct = ir::interpret(Modules[M]);
    for (size_t I = M; I < Out.size(); I += Modules.size()) {
      EXPECT_EQ(Out[I].Finished, Direct.Finished);
      EXPECT_EQ(Out[I].DynInstrs, Direct.DynInstrs);
      EXPECT_EQ(Out[I].Checksum, Direct.Checksum);
      EXPECT_EQ(Out[I].BlockCounts, Direct.BlockCounts);
      EXPECT_EQ(Out[I].EdgeCounts, Direct.EdgeCounts);
    }
  }
}

// The estimated and interpreted profiles of the *same* module live in
// distinct cache slots: the kind salt in the key keeps profileModule and
// estimatedProfileModule from ever serving each other's results, in either
// insertion order.
TEST(CompileService, ProfileKindsNeverShareASlot) {
  lang::Program P = parseWorkload(*findWorkload("hydro2d"));
  lower::LowerResult LR = lower::lowerProgram(P, {});
  ASSERT_TRUE(LR.ok()) << LR.Error;
  opt::cleanupModule(LR.M);
  const ir::Module &M = LR.M;

  clearProfileCache();
  ir::InterpResult Interp = profileModule(M);
  ir::InterpResult Est = estimatedProfileModule(M);
  ProfileCacheStats S = profileCacheStats();
  EXPECT_EQ(S.Misses, 2u) << "kinds collided on one cache slot";
  EXPECT_EQ(S.Hits, 0u);

  // Re-request both: now both hit, and each kind gets its own bits back.
  ir::InterpResult Interp2 = profileModule(M);
  ir::InterpResult Est2 = estimatedProfileModule(M);
  S = profileCacheStats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(Interp2.BlockCounts, Interp.BlockCounts);
  EXPECT_EQ(Est2.BlockCounts, Est.BlockCounts);

  // The two kinds really are different data (an interpreted run enters the
  // function once; the estimate injects EstimateEntryCount units), and the
  // cached estimate is bit-identical to an uncached estimateProfile call.
  EXPECT_NE(Est.BlockCounts, Interp.BlockCounts);
  ir::InterpResult Direct = trace::estimateProfile(M.Fn);
  EXPECT_EQ(Est.Finished, Direct.Finished);
  EXPECT_EQ(Est.BlockCounts, Direct.BlockCounts);
  EXPECT_EQ(Est.EdgeCounts, Direct.EdgeCounts);
}

// Eviction never hands out a wrong or dangling profile: push far more
// distinct modules through one shard capacity's worth of traffic than the
// per-shard bound, re-requesting earlier keys throughout, from many
// threads. (Entries are shared_ptr-held, so a sweep during an in-flight
// computation must not invalidate waiters.)
TEST(CompileService, ProfileCacheSurvivesEviction) {
  // Distinct modules via distinct instruction budgets on one module: the
  // budget is part of the key, so each MaxInstrs value is its own entry.
  lang::Program P = parseWorkload(workloads().front());
  lower::LowerResult LR = lower::lowerProgram(P, {});
  ASSERT_TRUE(LR.ok()) << LR.Error;
  opt::cleanupModule(LR.M);
  const ir::Module &M = LR.M;

  clearProfileCache();
  constexpr size_t Distinct = 600; // > total cache capacity (8 x 64).
  constexpr uint64_t BaseBudget = 1000000000ull;
  std::vector<uint64_t> Checksums(Distinct * 2);
  ThreadPool::parallelForChunked(
      8, Checksums.size(),
      [&](size_t I) {
        uint64_t Budget = BaseBudget + I % Distinct;
        Checksums[I] = profileModule(M, Budget).Checksum;
      },
      ChunkPolicy::Guided);
  uint64_t Expect = ir::interpret(M).Checksum;
  for (uint64_t C : Checksums)
    EXPECT_EQ(C, Expect);
}
