//===- tests/locality_test.cpp - Reuse analysis tests ---------------------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "locality/Locality.h"
#include "lower/Lower.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::lang;
using namespace bsched::locality;

namespace {

Program parseOk(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

void expectSemanticsPreserved(const Program &Original, Program &Transformed) {
  EvalResult Ref = evalProgram(Original);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  ASSERT_EQ(checkProgram(Transformed), "");
  EvalResult Ast = evalProgram(Transformed);
  ASSERT_TRUE(Ast.ok()) << Ast.Error;
  EXPECT_EQ(Ast.Checksum, Ref.Checksum) << printProgram(Transformed);
  lower::LowerResult LR = lower::lowerProgram(Transformed);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  EXPECT_EQ(ir::interpret(LR.M).Checksum, Ref.Checksum);
}

/// Counts hit/miss-marked loads in the lowered IR.
std::pair<int, int> countMarkedLoads(const Program &P) {
  Program Copy = P;
  EXPECT_EQ(checkProgram(Copy), "");
  lower::LowerResult LR = lower::lowerProgram(Copy);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  int Hits = 0, Misses = 0;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs) {
      if (!I.isLoad())
        continue;
      if (I.HM == ir::HitMiss::Hit)
        ++Hits;
      if (I.HM == ir::HitMiss::Miss)
        ++Misses;
    }
  return {Hits, Misses};
}

// The Figure-3 kernel: A[i][j] has spatial reuse in j, B[i][0] temporal.
// 16-column rows (128 bytes) keep rows line-aligned.
const char *Figure3 = R"(
array A[16][16];
array B[16][16];
array C[16][16] output;
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) {
    C[i][j] = A[i][j] + B[i][0];
  }
}
)";

} // namespace

TEST(Locality, Figure3SpatialAndTemporal) {
  Program P = parseOk(Figure3);
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  // The init-free program has one innermost candidate loop.
  EXPECT_EQ(S.LoopsPeeled, 1) << "B[i][0] temporal reuse triggers peeling";
  EXPECT_EQ(S.LoopsUnrolled, 1) << "A[i][j] spatial reuse triggers unrolling";
  EXPECT_EQ(S.TemporalRefs, 1);
  EXPECT_EQ(S.SpatialRefs, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, SpatialMarkingPattern) {
  // Pure spatial loop, 32 doubles: after unrolling by 4, the lowered code
  // must contain exactly one miss-marked A-load per body instance and three
  // hits (plus the remainder-chain copies).
  Program P = parseOk("array A[32];\narray C[32] output;\n"
                      "for (j = 0; j < 32; j += 1) { C[j] = A[j] * 2.0; }\n");
  LocalityStats S = applyLocality(P);
  EXPECT_EQ(S.SpatialRefs, 1);
  EXPECT_EQ(S.LoopsUnrolled, 1);
  auto [Hits, Misses] = countMarkedLoads(P);
  // Main body: copies 0..3 -> miss,hit,hit,hit. Remainder chain: copies
  // 0..2 -> miss,hit,hit.
  EXPECT_EQ(Misses, 2);
  EXPECT_EQ(Hits, 5);
}

TEST(Locality, MisalignedStartShiftsMissCopy) {
  // Loop starting at j=1: addresses 8,16,24,32...; copy 3 (j=4,8,..) hits
  // the line boundary.
  Program P = parseOk("array A[33];\narray C[33] output;\n"
                      "for (j = 1; j < 33; j += 1) { C[j] = A[j] * 2.0; }\n");
  LocalityStats S = applyLocality(P);
  EXPECT_EQ(S.SpatialRefs, 1);
  Program Flat = P;
  ASSERT_EQ(checkProgram(Flat), "");
  lower::LowerResult LR = lower::lowerProgram(Flat);
  ASSERT_TRUE(LR.ok());
  // Find the main unrolled block: it has 4 A-loads; the miss must not be the
  // first copy.
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks) {
    std::vector<ir::HitMiss> Marks;
    for (const ir::Instr &I : B.Instrs)
      if (I.isLoad() && I.Mem.ArrayId == 0)
        Marks.push_back(I.HM);
    if (Marks.size() == 4) {
      EXPECT_EQ(Marks[0], ir::HitMiss::Hit);
      EXPECT_EQ(Marks[3], ir::HitMiss::Miss);
    }
  }
}

TEST(Locality, Stride2UnrollsByTwo) {
  // Stride 16 bytes: two iterations per line.
  Program P = parseOk("array A[64];\narray C[32] output;\n"
                      "for (j = 0; j < 32; j += 1) { C[j] = A[2 * j]; }\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs, 1);
  auto [Hits, Misses] = countMarkedLoads(Q);
  // Main body: copies 0 (miss), 1 (hit). The remainder chain at factor 2 has
  // a single copy-0 instance, which is a miss.
  EXPECT_EQ(Misses, 2);
  EXPECT_EQ(Hits, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, TemporalOnlyPeels) {
  Program P = parseOk("array B[8][8];\narray C[64] output;\n"
                      "for (i = 0; i < 8; i += 1) {\n"
                      "  for (j = 0; j < 8; j += 1) {\n"
                      "    C[i * 8 + j] = B[i][0] + j;\n"
                      "  }\n"
                      "}\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_GE(S.TemporalRefs, 1);
  EXPECT_EQ(S.LoopsPeeled, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, NonAffineGetsNoInfo) {
  Program P = parseOk("array idx[16] int;\narray A[16];\narray C[16] output;\n"
                      "for (j = 0; j < 16; j += 1) { C[j] = A[idx[j]]; }\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs + S.TemporalRefs, 1)
      << "C/idx affine; A[idx[j]] is not";
  EXPECT_GE(S.RefsNoInfo, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, UnknownRowAlignmentGetsNoInfo) {
  // 10-column rows: 80-byte row stride is not a multiple of the 32-byte
  // line, so A[i][j]'s alignment is unknown at compile time (paper limit 1).
  Program P = parseOk("array A[10][10];\narray C[10][10] output;\n"
                      "for (i = 0; i < 10; i += 1) {\n"
                      "  for (j = 0; j < 10; j += 1) {\n"
                      "    C[i][j] = A[i][j];\n"
                      "  }\n"
                      "}\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs, 0);
  EXPECT_GE(S.RefsNoInfo, 1);
}

TEST(Locality, NonLiteralLowerBoundGetsNoInfo) {
  Program P = parseOk("array A[32];\narray C[32] output;\nvar b int = 1;\n"
                      "for (j = b; j < 32; j += 1) { C[j] = A[j]; }\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs, 0);
}

TEST(Locality, ColumnMajorInnerLoopOverRows) {
  // Fortran-style: column-major array traversed by the first subscript has
  // stride 8 in the inner loop.
  Program P = parseOk("array A[16][16] colmajor;\narray C[256] output;\n"
                      "for (j = 0; j < 16; j += 1) {\n"
                      "  for (i = 0; i < 16; i += 1) {\n"
                      "    C[j * 16 + i] = A[i][j];\n"
                      "  }\n"
                      "}\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, HonoursExternalUnrollFactorEight) {
  Program P = parseOk("array A[64];\narray C[64] output;\n"
                      "for (j = 0; j < 64; j += 1) { C[j] = A[j] + 1.0; }\n");
  Program Q = P;
  LocalityOptions Opts;
  Opts.UnrollFactor = 8;
  LocalityStats S = applyLocality(Q, Opts);
  EXPECT_EQ(S.LoopsUnrolled, 1);
  // Factor 8 with stride 8: copies 0 and 4 are misses per body instance.
  Program Flat = Q;
  ASSERT_EQ(checkProgram(Flat), "");
  lower::LowerResult LR = lower::lowerProgram(Flat);
  ASSERT_TRUE(LR.ok());
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks) {
    std::vector<ir::HitMiss> Marks;
    for (const ir::Instr &I : B.Instrs)
      if (I.isLoad() && I.Mem.ArrayId == 0)
        Marks.push_back(I.HM);
    if (Marks.size() == 8) {
      EXPECT_EQ(Marks[0], ir::HitMiss::Miss);
      EXPECT_EQ(Marks[4], ir::HitMiss::Miss);
      EXPECT_EQ(Marks[1], ir::HitMiss::Hit);
      EXPECT_EQ(Marks[7], ir::HitMiss::Hit);
    }
  }
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, SemanticsAcrossManyShapes) {
  const char *Sources[] = {
      Figure3,
      "array A[24];\narray C[24] output;\n"
      "for (j = 0; j < 21; j += 1) { C[j] = A[j] + A[j + 3]; }\n",
      "array A[16][16];\narray C[16][16] output;\nvar t = 0.5;\n"
      "for (i = 0; i < 16; i += 1) {\n"
      "  for (j = 0; j < 15; j += 1) {\n"
      "    C[i][j] = A[i][j] * t + A[i][j + 1];\n"
      "  }\n"
      "}\n",
  };
  for (const char *Src : Sources) {
    Program P = parseOk(Src);
    for (int F : {0, 4, 8}) {
      Program Q = P;
      LocalityOptions Opts;
      Opts.UnrollFactor = F;
      applyLocality(Q, Opts);
      expectSemanticsPreserved(P, Q);
    }
  }
}

TEST(Locality, GroupsShareIdAcrossCopies) {
  Program P = parseOk("array A[32];\narray C[32] output;\n"
                      "for (j = 0; j < 32; j += 1) { C[j] = A[j]; }\n");
  applyLocality(P);
  ASSERT_EQ(checkProgram(P), "");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  // All A-loads in the main block share one locality group.
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks) {
    std::vector<int> Groups;
    for (const ir::Instr &I : B.Instrs)
      if (I.isLoad() && I.Mem.ArrayId == 0)
        Groups.push_back(I.LocalityGroup);
    if (Groups.size() == 4) {
      EXPECT_EQ(Groups[0], Groups[1]);
      EXPECT_EQ(Groups[0], Groups[3]);
      EXPECT_GE(Groups[0], 0);
    }
  }
}

TEST(Locality, ThreeDimensionalArrays) {
  // Innermost stride-1 dimension of a 3-D array: spatial reuse applies as
  // long as the outer dimension strides are line multiples (4x8x8 doubles:
  // planes of 512B, rows of 64B).
  Program P = parseOk("array T3[4][8][8];\narray O3[4][8][8] output;\n"
                      "for (i = 0; i < 4; i += 1) {\n"
                      "  for (j = 0; j < 8; j += 1) {\n"
                      "    for (k = 0; k < 8; k += 1) {\n"
                      "      O3[i][j][k] = T3[i][j][k] * 2.0;\n"
                      "    }\n"
                      "  }\n"
                      "}\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs, 1);
  EXPECT_EQ(S.LoopsUnrolled, 1);
  expectSemanticsPreserved(P, Q);
}

TEST(Locality, MisalignedOuterStrideGetsNoInfo3D) {
  // 5-row planes: 5*8*8 = 320-byte plane stride is a line multiple, but the
  // middle dimension of 6 columns gives 48-byte rows — not line-aligned, so
  // alignment is unknown.
  Program P = parseOk("array T3[4][5][6];\narray O3[4][5][6] output;\n"
                      "for (i = 0; i < 4; i += 1) {\n"
                      "  for (j = 0; j < 5; j += 1) {\n"
                      "    for (k = 0; k < 6; k += 1) {\n"
                      "      O3[i][j][k] = T3[i][j][k];\n"
                      "    }\n"
                      "  }\n"
                      "}\n");
  Program Q = P;
  LocalityStats S = applyLocality(Q);
  EXPECT_EQ(S.SpatialRefs, 0);
  EXPECT_GE(S.RefsNoInfo, 1);
}
