//===- tests/artifact_store_test.cpp - Store fault injection ---------------===//
//
// The persistent artifact store's one inviolable property: a damaged store
// can make runs slower, never wrong and never crashing. This file injects
// every fault class the loader defends against — truncation at arbitrary
// points, single-bit flips anywhere in the file, stale schema versions,
// file-name hash collisions (wrong embedded key), and concurrent writers —
// and asserts each degrades to a counted miss followed by a successful
// recompute that reproduces the undamaged result exactly. Runs under the
// same ctest matrix as everything else, including the ASan configuration.
//
//===----------------------------------------------------------------------===//

#include "driver/ArtifactStore.h"
#include "driver/Artifacts.h"
#include "driver/Experiment.h"
#include "support/Serialize.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace bsched;
using namespace bsched::driver;

namespace {

/// Fresh store directory per test; everything the store writes lands under
/// /tmp and is removed on teardown.
class ArtifactStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/bsched-store-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
    setArtifactStoreDir(Dir);
    setArtifactStoreReads(true);
    resetArtifactStoreStats();
    clearResultCache();
  }
  void TearDown() override {
    setArtifactStoreDir("");
    clearResultCache();
    std::string Cmd = "rm -rf '" + Dir + "'";
    ASSERT_EQ(std::system(Cmd.c_str()), 0);
  }

  static std::string readFile(const std::string &Path) {
    std::ifstream In(Path, std::ios::binary);
    EXPECT_TRUE(In.good()) << Path;
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }
  static void writeFile(const std::string &Path, const std::string &Bytes) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    ASSERT_TRUE(Out.good()) << Path;
  }

  std::string Dir;
};

TEST_F(ArtifactStoreTest, StoreThenLoadRoundTrips) {
  const std::string Key = "some|experiment|key";
  const std::string Payload = "payload bytes \x01\x02\x00 with nuls";
  ASSERT_TRUE(storeArtifact(Key, Payload));
  std::string Loaded;
  ASSERT_TRUE(loadArtifact(Key, Loaded));
  EXPECT_EQ(Loaded, Payload);
  ArtifactStoreStats S = artifactStoreStats();
  EXPECT_EQ(S.Writes, 1u);
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.CorruptRejected, 0u);
}

TEST_F(ArtifactStoreTest, MissingFileIsAMiss) {
  std::string Loaded;
  EXPECT_FALSE(loadArtifact("never stored", Loaded));
  EXPECT_EQ(artifactStoreStats().DiskMisses, 1u);
}

TEST_F(ArtifactStoreTest, EveryTruncationPointRejects) {
  const std::string Key = "trunc-key";
  ASSERT_TRUE(storeArtifact(Key, "0123456789abcdef0123456789abcdef"));
  const std::string Path = artifactPath(Key);
  const std::string Full = readFile(Path);
  ASSERT_GT(Full.size(), 16u);
  for (size_t Cut = 0; Cut != Full.size(); ++Cut) {
    writeFile(Path, Full.substr(0, Cut));
    std::string Loaded = "sentinel";
    EXPECT_FALSE(loadArtifact(Key, Loaded)) << "cut at " << Cut;
  }
  ArtifactStoreStats S = artifactStoreStats();
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.CorruptRejected, Full.size());
  // The undamaged bytes still verify.
  writeFile(Path, Full);
  std::string Loaded;
  EXPECT_TRUE(loadArtifact(Key, Loaded));
}

TEST_F(ArtifactStoreTest, EveryByteFlipRejects) {
  const std::string Key = "flip-key";
  ASSERT_TRUE(storeArtifact(Key, "a small payload"));
  const std::string Path = artifactPath(Key);
  const std::string Full = readFile(Path);
  for (size_t I = 0; I != Full.size(); ++I) {
    std::string Bad = Full;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x20);
    writeFile(Path, Bad);
    std::string Loaded;
    EXPECT_FALSE(loadArtifact(Key, Loaded)) << "flip at byte " << I;
  }
  ArtifactStoreStats S = artifactStoreStats();
  EXPECT_EQ(S.DiskHits, 0u);
  // Every flip lands in some rejection bucket, none in DiskHits. (A flip in
  // the version word that still checksums correctly is impossible — the
  // checksum covers it — so everything lands in CorruptRejected.)
  EXPECT_EQ(S.CorruptRejected, Full.size());
}

TEST_F(ArtifactStoreTest, StaleSchemaVersionRejects) {
  const std::string Key = "version-key";
  ASSERT_TRUE(storeArtifact(Key, "payload"));
  const std::string Path = artifactPath(Key);

  // Craft a file that is internally consistent (magic ok, checksum ok) but
  // carries a bumped schema version: the loader must classify it as
  // version-stale, not corrupt, and must not hand the payload out.
  ByteWriter W;
  W.u32(0x52415342u); // "BSAR"
  W.u32(ArtifactSchemaVersion + 1);
  W.str(Key);
  W.str("payload from the future");
  Fnv1a Sum;
  Sum.str(W.buffer());
  W.u64(Sum.get());
  writeFile(Path, W.buffer());

  std::string Loaded;
  EXPECT_FALSE(loadArtifact(Key, Loaded));
  ArtifactStoreStats S = artifactStoreStats();
  EXPECT_EQ(S.VersionRejected, 1u);
  EXPECT_EQ(S.DiskHits, 0u);
}

TEST_F(ArtifactStoreTest, WrongEmbeddedKeyRejects) {
  // Two different keys whose entries we cross-wire on disk: a file-name
  // hash collision in miniature. The embedded-key check must refuse to
  // serve key A's bytes as key B's result.
  const std::string KeyA = "key-a", KeyB = "key-b";
  ASSERT_TRUE(storeArtifact(KeyA, "payload A"));
  ASSERT_TRUE(storeArtifact(KeyB, "payload B"));
  writeFile(artifactPath(KeyB), readFile(artifactPath(KeyA)));

  std::string Loaded;
  EXPECT_FALSE(loadArtifact(KeyB, Loaded));
  EXPECT_EQ(artifactStoreStats().KeyRejected, 1u);
  // Key A itself is untouched.
  EXPECT_TRUE(loadArtifact(KeyA, Loaded));
  EXPECT_EQ(Loaded, "payload A");
}

TEST_F(ArtifactStoreTest, ConcurrentWritersLeaveOneCompleteFile) {
  const std::string Key = "contended-key";
  const std::string Payload(4096, 'x'); // big enough to straddle writes
  constexpr unsigned Writers = 8;
  ThreadPool::parallelFor(4, Writers, [&](size_t) {
    EXPECT_TRUE(storeArtifact(Key, Payload));
  });
  std::string Loaded;
  ASSERT_TRUE(loadArtifact(Key, Loaded));
  EXPECT_EQ(Loaded, Payload);
  EXPECT_EQ(artifactStoreStats().Writes, Writers);
}

TEST_F(ArtifactStoreTest, ReadToggleBypassesDiskWithoutDisablingWrites) {
  const std::string Key = "toggle-key";
  ASSERT_TRUE(storeArtifact(Key, "bytes"));
  setArtifactStoreReads(false);
  std::string Loaded;
  EXPECT_FALSE(loadArtifact(Key, Loaded));          // read bypassed...
  EXPECT_TRUE(storeArtifact("other-key", "more")); // ...writes still land
  setArtifactStoreReads(true);
  EXPECT_TRUE(loadArtifact(Key, Loaded));
  EXPECT_EQ(Loaded, "bytes");
}

//===----------------------------------------------------------------------===//
// End to end through runCached
//===----------------------------------------------------------------------===//

/// A corrupted store entry under a real experiment key degrades runCached to
/// recompute — same cycles and checksum as a store-less run, one corrupt
/// rejection counted, and the recompute repairs the entry on disk.
TEST_F(ArtifactStoreTest, RunCachedRecomputesThroughCorruption) {
  const Workload &W = workloads().front();
  CompileOptions Opts;
  Opts.UnrollFactor = 4;

  // Baseline without any store.
  setArtifactStoreDir("");
  RunResult Baseline = runWorkload(W, Opts);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Error;

  // Populate the store, then vandalize every entry in the directory.
  setArtifactStoreDir(Dir);
  resetArtifactStoreStats();
  const RunResult &First = runCached(W, Opts);
  ASSERT_TRUE(First.ok());
  ASSERT_GE(artifactStoreStats().Writes, 1u);
  std::string Key = resultKey(W, Opts);
  std::string Path = artifactPath(Key);
  std::string Good = readFile(Path);
  std::string Bad = Good;
  Bad[Bad.size() / 2] = static_cast<char>(Bad[Bad.size() / 2] ^ 0xff);
  writeFile(Path, Bad);

  // A fresh memory cache forces the disk tier; the damaged entry must fall
  // through to a recompute with the exact baseline result.
  clearResultCache();
  resetArtifactStoreStats();
  const RunResult &Recomputed = runCached(W, Opts);
  ASSERT_TRUE(Recomputed.ok()) << Recomputed.Error;
  EXPECT_EQ(Recomputed.Sim.Cycles, Baseline.Sim.Cycles);
  EXPECT_EQ(Recomputed.Sim.Checksum, Baseline.Sim.Checksum);
  ArtifactStoreStats S = artifactStoreStats();
  EXPECT_EQ(S.CorruptRejected, 1u);
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_GE(S.Writes, 1u); // write-back repaired the entry

  // And the repaired entry now serves a verified disk hit with the same
  // result.
  clearResultCache();
  resetArtifactStoreStats();
  const RunResult &FromDisk = runCached(W, Opts);
  ASSERT_TRUE(FromDisk.ok());
  EXPECT_EQ(FromDisk.Sim.Cycles, Baseline.Sim.Cycles);
  EXPECT_EQ(FromDisk.Sim.Checksum, Baseline.Sim.Checksum);
  EXPECT_EQ(artifactStoreStats().DiskHits, 1u);
}

/// A stored payload that passes every file-level check but fails typed
/// decoding (schema drift the version salt missed) is reclassified as
/// corrupt and recomputed.
TEST_F(ArtifactStoreTest, UndecodablePayloadDegradesToRecompute) {
  const Workload &W = workloads().front();
  CompileOptions Opts;
  const RunResult &First = runCached(W, Opts);
  ASSERT_TRUE(First.ok());

  // Replace the entry with a VALID store file whose payload is garbage for
  // the RunResult decoder.
  std::string Key = resultKey(W, Opts);
  ASSERT_TRUE(storeArtifact(Key, "not a RunResult encoding"));

  clearResultCache();
  resetArtifactStoreStats();
  const RunResult &R = runCached(W, Opts);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Sim.Cycles, First.Sim.Cycles);
  ArtifactStoreStats S = artifactStoreStats();
  EXPECT_EQ(S.CorruptRejected, 1u); // noteArtifactDecodeFailure reclassified
  EXPECT_EQ(S.DiskHits, 0u);        // ...the provisional hit
}

/// Disk-tier results are indistinguishable from computed ones: same cycle
/// counts for a grid of jobs run store-less, store-cold and store-warm.
TEST_F(ArtifactStoreTest, DiskTierMatchesComputeForAGrid) {
  std::vector<ExperimentJob> Jobs;
  const auto &All = workloads();
  CompileOptions Balanced, Unrolled;
  Unrolled.UnrollFactor = 4;
  for (size_t I = 0; I < All.size() && I < 4; ++I) {
    Jobs.push_back({&All[I], Balanced, {}});
    Jobs.push_back({&All[I], Unrolled, {}});
  }

  setArtifactStoreDir("");
  std::vector<uint64_t> NoStore;
  for (const RunResult *R : runAll(Jobs, 2)) {
    ASSERT_TRUE(R->ok());
    NoStore.push_back(R->Sim.Cycles);
  }

  clearResultCache();
  setArtifactStoreDir(Dir);
  std::vector<uint64_t> Cold;
  for (const RunResult *R : runAll(Jobs, 2)) {
    ASSERT_TRUE(R->ok());
    Cold.push_back(R->Sim.Cycles);
  }

  clearResultCache();
  resetArtifactStoreStats();
  std::vector<uint64_t> Warm;
  for (const RunResult *R : runAll(Jobs, 2)) {
    ASSERT_TRUE(R->ok());
    Warm.push_back(R->Sim.Cycles);
  }
  EXPECT_EQ(artifactStoreStats().DiskHits, Jobs.size());
  EXPECT_EQ(NoStore, Cold);
  EXPECT_EQ(NoStore, Warm);
}

} // namespace
