//===- tests/irparser_test.cpp - Textual IR round-trip tests ---------------===//

#include "ir/IRParser.h"
#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Generate.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "regalloc/LinearScan.h"
#include "sched/Schedule.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::ir;

namespace {

const char *HandWritten = R"(
array A 16
array Out 4 output
func demo
b0:
  ldi v0, 0
  ldi v1, 64
  ldi v2, 16
  jmp b1
b1:
  cmplt v3, v0, v2
  br v3, b2, b3
b2:
  sll v4, v0, #3
  add v5, v1, v4
  itof v6, v0
  fst v6, 0(v5)
  add v0, v0, #1
  jmp b1
b3:
  fld v7, 0(v1)
  fld v8, 8(v1)
  fadd v9, v7, v8
  ldi v10, 192
  fst v9, 0(v10)
  ret
)";

} // namespace

TEST(IRParser, ParsesHandWrittenModule) {
  ParseIRResult R = parseModule(HandWritten);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.M.Fn.Name, "demo");
  EXPECT_EQ(R.M.Fn.Blocks.size(), 4u);
  // A at 64, Out at 64 + 16*8 = 192 (32-byte aligned layout).
  EXPECT_EQ(R.M.Arrays[0].Base, 64u);
  EXPECT_EQ(R.M.Arrays[1].Base, 192u);
  InterpResult I = interpret(R.M);
  ASSERT_TRUE(I.Finished);
  // Out[0] = A[0] + A[1] = 0.0 + 1.0.
  EXPECT_GT(I.DynInstrs, 16u * 6);
}

TEST(IRParser, InfersRegisterClasses) {
  ParseIRResult R = parseModule(HandWritten);
  ASSERT_TRUE(R.ok()) << R.Error;
  // v6 is written by itof -> fp; v0 by ldi -> int.
  EXPECT_EQ(R.M.Fn.regClass(Reg(NumPhysTotal + 6)), RegClass::Fp);
  EXPECT_EQ(R.M.Fn.regClass(Reg(NumPhysTotal + 0)), RegClass::Int);
}

TEST(IRParser, RejectsClassConflicts) {
  ParseIRResult R = parseModule("func f\nb0:\n  ldi v0, 1\n"
                                "  fadd v1, v0, v0\n  ret\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("class conflict"), std::string::npos);
}

TEST(IRParser, RejectsUnknownOpcode) {
  ParseIRResult R = parseModule("func f\nb0:\n  frobnicate v0\n  ret\n");
  EXPECT_FALSE(R.ok());
}

TEST(IRParser, RejectsOutOfOrderLabels) {
  ParseIRResult R = parseModule("func f\nb1:\n  ret\n");
  EXPECT_FALSE(R.ok());
}

TEST(IRParser, RejectsInstructionOutsideBlock) {
  ParseIRResult R = parseModule("func f\n  ldi v0, 1\n");
  EXPECT_FALSE(R.ok());
}

TEST(IRParser, RejectsBadBranchTarget) {
  ParseIRResult R = parseModule("func f\nb0:\n  ldi v0, 1\n"
                                "  br v0, b7, b0\n");
  EXPECT_FALSE(R.ok()) << "verifier must reject the dangling target";
}

TEST(IRParser, MalformedInputsProduceDiagnosticsNotCrashes) {
  // Each snippet is malformed in a different spot; every one must come back
  // with a non-empty diagnostic — never a crash, assert, or silent accept.
  const char *Broken[] = {
      "",                                              // no function body
      "func f\n",                                      // func with no blocks
      "array A\nfunc f\nb0:\n  ret\n",                 // array missing size
      "array A 0\nfunc f\nb0:\n  ret\n",               // zero-sized array
      "array A -4\nfunc f\nb0:\n  ret\n",              // negative size
      "array A 16 wobble\nfunc f\nb0:\n  ret\n",       // trailing tokens
      "func f\nb0:\n  ldi v0\n  ret\n",                // missing immediate
      "func f\nb0:\n  ldi v0, xyz\n  ret\n",           // non-numeric imm
      "func f\nb0:\n  ldi q0, 1\n  ret\n",             // bad register kind
      "func f\nb0:\n  ldi r40, 1\n  ret\n",            // phys reg out of range
      "func f\nb0:\n  ldi v99999999999, 1\n  ret\n",   // huge vreg index
      "func f\nb0:\n  add v0, v1\n  ret\n",            // missing third operand
      "func f\nb0:\n  fld v1, 0 v0\n  ret\n",          // missing '('
      "func f\nb0:\n  ldi v0, 64\n  fld v1, 0(v0\n  ret\n", // missing ')'
      "func f\nb0:\n  jmp\n",                          // jmp without target
      "func f\nb0:\n  ldi v0, 1\n  br v0, b0\n",       // br missing 2nd target
      "func f\nb0:\n  jmp b99\n",                      // dangling jump target
      "func f\nb0:\n  ldi v0, 1\n",                    // block lacks terminator
      "func f\nb0:\n  ret\nb0:\n  ret\n",              // duplicate label
      "func f\nb0:\n  ret extra\n",                    // trailing tokens
  };
  for (const char *Src : Broken) {
    ParseIRResult R = parseModule(Src);
    EXPECT_FALSE(R.ok()) << "accepted:\n" << Src;
    EXPECT_FALSE(R.Error.empty()) << "empty diagnostic for:\n" << Src;
  }
}

TEST(IRParser, EveryPrefixOfAValidModuleIsHandled) {
  // Truncation fuzzing: any prefix of a valid module must either parse or
  // fail with a diagnostic — no crash.
  const std::string Src = HandWritten;
  for (size_t N = 0; N <= Src.size(); ++N) {
    ParseIRResult R = parseModule(Src.substr(0, N));
    if (!R.ok()) {
      EXPECT_FALSE(R.Error.empty()) << "prefix length " << N;
    }
  }
}

TEST(IRParser, AnnotationsRoundTrip) {
  const char *Src = "array A 8\nfunc f\nb0:\n"
                    "  ldi v0, 64\n"
                    "  fld v1, 0(v0)  ; miss\n"
                    "  fld v2, 8(v0)  ; hit\n"
                    "  fst v1, 16(v0) ; spill\n"
                    "  ld v3, 24(v0)  ; restore\n"
                    "  ret\n";
  ParseIRResult R = parseModule(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  const auto &Is = R.M.Fn.Blocks[0].Instrs;
  EXPECT_EQ(Is[1].HM, HitMiss::Miss);
  EXPECT_EQ(Is[2].HM, HitMiss::Hit);
  EXPECT_TRUE(Is[3].IsSpill);
  EXPECT_TRUE(Is[4].IsRestore);
}

TEST(IRParser, PrintParseReprintIsStable) {
  ParseIRResult R1 = parseModule(HandWritten);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  std::string Text1 = printModule(R1.M);
  ParseIRResult R2 = parseModule(Text1);
  ASSERT_TRUE(R2.ok()) << R2.Error << "\n" << Text1;
  EXPECT_EQ(printModule(R2.M), Text1);
}

TEST(IRParser, FuzzedLoweredModulesRoundTripFunctionally) {
  // print -> parse loses only aliasing metadata; interpretation must agree
  // with the AST oracle exactly.
  for (uint64_t Seed = 400; Seed != 430; ++Seed) {
    lang::Program P = lang::generateProgram(Seed);
    lang::EvalResult Ref = lang::evalProgram(P);
    ASSERT_TRUE(Ref.ok());
    lower::LowerResult LR = lower::lowerProgram(P);
    ASSERT_TRUE(LR.ok());
    std::string Text = printModule(LR.M);
    ParseIRResult R = parseModule(Text);
    ASSERT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Error;
    InterpResult I = interpret(R.M);
    ASSERT_TRUE(I.Finished) << "seed " << Seed;
    EXPECT_EQ(I.Checksum, Ref.Checksum) << "seed " << Seed;
  }
}

TEST(IRParser, ReparsedCodeSchedulesAndAllocates) {
  // The full back end runs on re-parsed IR (conservatively, since the
  // aliasing metadata is gone).
  lang::Program P = lang::generateProgram(5);
  lang::EvalResult Ref = lang::evalProgram(P);
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  ParseIRResult R = parseModule(printModule(LR.M));
  ASSERT_TRUE(R.ok()) << R.Error;
  sched::scheduleFunction(R.M, sched::SchedulerKind::Balanced);
  regalloc::RegAllocStats S = regalloc::allocateRegisters(R.M);
  ASSERT_TRUE(S.ok()) << S.Error;
  ASSERT_EQ(verify(R.M), "");
  EXPECT_EQ(interpret(R.M).Checksum, Ref.Checksum);
}
