//===- tests/regalloc_test.cpp - Register allocation tests ----------------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "regalloc/LinearScan.h"
#include "sched/Schedule.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>
#include <set>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::regalloc;

namespace {

lang::Program parseOk(const std::string &Src) {
  lang::ParseResult R = lang::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = lang::checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

void expectNoVirtualRegs(const Module &M) {
  std::vector<Reg> Uses;
  for (const BasicBlock &B : M.Fn.Blocks)
    for (const Instr &I : B.Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      for (Reg R : Uses)
        EXPECT_TRUE(R.isPhys()) << printInstr(I);
      if (Reg D = I.def(); D.isValid()) {
        EXPECT_TRUE(D.isPhys()) << printInstr(I);
      }
    }
}

/// Full check: allocate, verify, and compare the checksum to the AST oracle.
RegAllocStats allocateAndCheck(const std::string &Src,
                               RegAllocOptions Opts = {},
                               bool Unroll8 = false) {
  lang::Program P = parseOk(Src);
  lang::EvalResult Ref = lang::evalProgram(P);
  EXPECT_TRUE(Ref.ok()) << Ref.Error;
  if (Unroll8)
    xform::unrollLoops(P, 8);
  EXPECT_EQ(lang::checkProgram(P), "");
  lower::LowerResult LR = lower::lowerProgram(P);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  sched::scheduleFunction(LR.M, sched::SchedulerKind::Balanced);
  RegAllocStats Stats = allocateRegisters(LR.M, Opts);
  EXPECT_TRUE(Stats.ok()) << Stats.Error;
  EXPECT_EQ(verify(LR.M), "");
  expectNoVirtualRegs(LR.M);
  EXPECT_EQ(interpret(LR.M).Checksum, Ref.Checksum) << Src;
  return Stats;
}

const char *SmallKernel = R"(
array A[32] output;
var s = 0.0;
for (i = 0; i < 32; i += 1) { A[i] = i * 2 + 1; s = s + A[i]; }
A[0] = s;
)";

// Many simultaneously live accumulators force spilling under a small file.
std::string pressureKernel(int Accs) {
  std::string Src = "array A[64];\narray Out[32] output;\n";
  for (int K = 0; K != Accs; ++K)
    Src += "var s" + std::to_string(K) + " = 0.0;\n";
  Src += "for (i = 0; i < 32; i += 1) {\n";
  for (int K = 0; K != Accs; ++K)
    Src += "  s" + std::to_string(K) + " = s" + std::to_string(K) +
           " + A[i] * " + std::to_string(K + 1) + ".0;\n";
  Src += "}\n";
  for (int K = 0; K != Accs; ++K)
    Src += "Out[" + std::to_string(K) + "] = s" + std::to_string(K) + ";\n";
  return Src;
}

} // namespace

TEST(RegAlloc, SimpleKernelNoSpills) {
  RegAllocStats S = allocateAndCheck(SmallKernel);
  EXPECT_EQ(S.SpilledVRegs, 0);
  EXPECT_GT(S.IntRegsUsed, 0u);
  EXPECT_GT(S.FpRegsUsed, 0u);
  EXPECT_LE(S.IntRegsUsed, 28u);
}

TEST(RegAlloc, PressureForcesSpills) {
  RegAllocOptions Tight;
  Tight.AllocatablePerClass = 8;
  RegAllocStats S = allocateAndCheck(pressureKernel(20), Tight);
  EXPECT_GT(S.SpilledVRegs, 0);
  EXPECT_GT(S.SpillStores, 0);
  EXPECT_GT(S.RestoreLoads, 0);
}

TEST(RegAlloc, FullFileHoldsModeratePressure) {
  // 8 accumulators + the hoisted load temps fit the 26-register fp file.
  RegAllocStats S = allocateAndCheck(pressureKernel(8));
  EXPECT_EQ(S.SpilledVRegs, 0);
}

TEST(RegAlloc, UnrollingIncreasesPressure) {
  // The paper's section 5.1 mechanism: unrolling by 8 adds spill code that
  // plain code does not need.
  std::string Src = pressureKernel(16);
  RegAllocOptions Tight;
  Tight.AllocatablePerClass = 18;
  RegAllocStats Plain = allocateAndCheck(Src, Tight, /*Unroll8=*/false);
  RegAllocStats Unrolled = allocateAndCheck(Src, Tight, /*Unroll8=*/true);
  EXPECT_GE(Unrolled.SpillStores + Unrolled.RestoreLoads,
            Plain.SpillStores + Plain.RestoreLoads);
}

TEST(RegAlloc, SpillsAreFlaggedAndTargetSpillArea) {
  lang::Program P = parseOk(pressureKernel(20));
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  RegAllocOptions Tight;
  Tight.AllocatablePerClass = 6;
  RegAllocStats S = allocateRegisters(LR.M, Tight);
  ASSERT_TRUE(S.ok()) << S.Error;
  int Spills = 0, Restores = 0;
  for (const BasicBlock &B : LR.M.Fn.Blocks)
    for (const Instr &I : B.Instrs) {
      if (I.IsSpill) {
        ++Spills;
        EXPECT_TRUE(I.isStore());
        EXPECT_EQ(I.Mem.ArrayId, LR.M.SpillArrayId);
      }
      if (I.IsRestore) {
        ++Restores;
        EXPECT_TRUE(I.isLoad());
        EXPECT_EQ(I.Mem.ArrayId, LR.M.SpillArrayId);
      }
    }
  EXPECT_EQ(Spills, S.SpillStores);
  EXPECT_EQ(Restores, S.RestoreLoads);
}

TEST(RegAlloc, DistinctSpillSlotsDisambiguate) {
  lang::Program P = parseOk(pressureKernel(20));
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  RegAllocOptions Tight;
  Tight.AllocatablePerClass = 6;
  ASSERT_TRUE(allocateRegisters(LR.M, Tight).ok());
  // Spill memrefs keep exact forms so the DAG can disambiguate slots.
  for (const BasicBlock &B : LR.M.Fn.Blocks)
    for (const Instr &I : B.Instrs)
      if (I.IsSpill || I.IsRestore) {
        EXPECT_TRUE(I.Mem.HasForm);
        EXPECT_TRUE(I.Mem.Terms.empty());
      }
}

TEST(RegAlloc, WorksAcrossSchedulersAndBranches) {
  const char *Src = R"(
array A[32] output;
var t = 0.0;
for (i = 0; i < 32; i += 1) {
  if (i < 10) { t = t + 1.5; } else { t = t - 0.5; }
  A[i] = t * i;
}
)";
  lang::Program P = parseOk(Src);
  lang::EvalResult Ref = lang::evalProgram(P);
  for (auto K :
       {sched::SchedulerKind::Traditional, sched::SchedulerKind::Balanced}) {
    lower::LowerResult LR = lower::lowerProgram(P);
    ASSERT_TRUE(LR.ok());
    sched::scheduleFunction(LR.M, K);
    RegAllocOptions Tight;
    Tight.AllocatablePerClass = 8;
    ASSERT_TRUE(allocateRegisters(LR.M, Tight).ok());
    ASSERT_EQ(verify(LR.M), "");
    EXPECT_EQ(interpret(LR.M).Checksum, Ref.Checksum);
  }
}

TEST(RegAlloc, CMovWithSpilledOperands) {
  // Force heavy pressure on the int side so conditional-move operands and
  // destinations end up spilled; semantics must survive.
  std::string Src = "array Out[20] output;\n";
  for (int K = 0; K != 18; ++K)
    Src += "var n" + std::to_string(K) + " int = " + std::to_string(K) +
           ";\n";
  Src += "var t int = 0;\n";
  Src += "for (i = 0; i < 20; i += 1) {\n";
  Src += "  if (i < 10) { t = 1; } else { t = 2; }\n";
  for (int K = 0; K != 18; ++K)
    Src += "  n" + std::to_string(K) + " = n" + std::to_string(K) +
           " + t + i;\n";
  Src += "}\n";
  for (int K = 0; K != 18; ++K)
    Src += "Out[" + std::to_string(K) + "] = n" + std::to_string(K) +
           " + 0.0;\n";
  lang::Program P = parseOk(Src);
  lang::EvalResult Ref = lang::evalProgram(P);
  ASSERT_TRUE(Ref.ok());
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  bool HasCMov = false;
  for (const BasicBlock &B : LR.M.Fn.Blocks)
    for (const Instr &I : B.Instrs)
      HasCMov |= I.Op == Opcode::CMov;
  ASSERT_TRUE(HasCMov);
  RegAllocOptions Tight;
  Tight.AllocatablePerClass = 4;
  RegAllocStats S = allocateRegisters(LR.M, Tight);
  ASSERT_TRUE(S.ok()) << S.Error;
  ASSERT_EQ(verify(LR.M), "");
  EXPECT_GT(S.SpilledVRegs, 0);
  EXPECT_EQ(interpret(LR.M).Checksum, Ref.Checksum);
}

TEST(RegAlloc, RejectsBadOptions) {
  lang::Program P = parseOk(SmallKernel);
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  RegAllocOptions Bad;
  Bad.AllocatablePerClass = 30; // would collide with reserved registers
  EXPECT_FALSE(allocateRegisters(LR.M, Bad).ok());
}

TEST(RegAlloc, PhysicalRegistersStayInBounds) {
  lang::Program P = parseOk(pressureKernel(20));
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok());
  RegAllocOptions Tight;
  Tight.AllocatablePerClass = 10;
  ASSERT_TRUE(allocateRegisters(LR.M, Tight).ok());
  std::set<uint32_t> IntUsed, FpUsed;
  std::vector<Reg> Uses;
  for (const BasicBlock &B : LR.M.Fn.Blocks)
    for (const Instr &I : B.Instrs) {
      Uses.clear();
      I.appendUses(Uses);
      if (Reg D = I.def(); D.isValid())
        Uses.push_back(D);
      for (Reg R : Uses) {
        ASSERT_TRUE(R.isPhys());
        if (R.Id < NumPhysPerClass)
          IntUsed.insert(R.Id);
        else
          FpUsed.insert(R.Id - NumPhysPerClass);
      }
    }
  // Allocatable 0..9, scratch 28/30/31, frame base 29 (int only).
  for (uint32_t R : IntUsed)
    EXPECT_TRUE(R < 10 || R == 28 || R == 29 || R == 30 || R == 31) << R;
  for (uint32_t R : FpUsed)
    EXPECT_TRUE(R < 10 || R == 28 || R == 30 || R == 31) << R;
}
