//===- tests/corpus_test.cpp - Replay the checked-in repro corpus ----------===//
//
// Every file in tests/corpus/*.repro is a reduced fuzzer finding (or a seed
// entry exercising an interesting configuration). Replaying one runs its
// source back through the differential-oracle leg it came from — the
// simulator twins under the recorded machine model, or the compile oracle
// under the recorded options — and expects a clean verdict: once a bug is
// fixed, its repro stays in the corpus as a permanent regression test.
//
// Promoting a new finding is a copy:
//   cp fuzz-out/repro-0-sim-twin-divergence.repro tests/corpus/
// (after fixing the bug; see docs/fuzzing.md).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "fuzz/Repro.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::fuzz;

#ifndef BSCHED_CORPUS_DIR
#error "BSCHED_CORPUS_DIR must point at tests/corpus"
#endif

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &E :
       std::filesystem::directory_iterator(BSCHED_CORPUS_DIR))
    if (E.path().extension() == ".repro")
      Files.push_back(E.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// gtest parameter names must be alphanumeric.
std::string paramName(const ::testing::TestParamInfo<std::string> &Info) {
  std::string Stem = std::filesystem::path(Info.param).stem().string();
  for (char &C : Stem)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Stem;
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST(Corpus, DirectoryHasRepros) {
  EXPECT_FALSE(corpusFiles().empty())
      << "no .repro files under " << BSCHED_CORPUS_DIR;
}

TEST_P(CorpusReplay, ReplaysClean) {
  std::ifstream In(GetParam());
  ASSERT_TRUE(In.good()) << GetParam();
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Repro R;
  std::string Err;
  ASSERT_TRUE(parseRepro(Buf.str(), R, Err)) << GetParam() << ": " << Err;

  Failure F = replayRepro(R, Err);
  ASSERT_EQ(Err, "") << GetParam();
  EXPECT_EQ(F.Kind, FailureKind::None)
      << GetParam() << " (recorded kind '" << R.Kind
      << "') regressed: " << failureKindName(F.Kind) << " " << F.Detail;
}

INSTANTIATE_TEST_SUITE_P(Repros, CorpusReplay,
                         ::testing::ValuesIn(corpusFiles()), paramName);
