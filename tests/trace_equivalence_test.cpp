//===- tests/trace_equivalence_test.cpp - Fast/reference trace twins -------===//
//
// Pins TraceImpl::Fast against TraceImpl::Reference:
//
//  * Config sweep: every trace-scheduling configuration of the canonical
//    differential list (TestConfigs.h), over every workload, must produce
//    byte-identical compiled code and identical TraceStats under both cores.
//  * Compensation stress: hand-written CFGs that maximize the bookkeeping the
//    fast core performs incrementally — side entrances into the middle of a
//    trace, multi-join traces with several cold arms, and a peeled-loop back
//    edge whose latch is itself a trace block (so compensation retargets an
//    on-trace terminator). Each shape is checked at the trace-pass level:
//    identical output text, identical stats, verifier-clean, and an
//    interpreter checksum unchanged by the pass.
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"
#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "ir/IRParser.h"
#include "ir/Interp.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

#include <string>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::trace;

namespace {

/// Asserts the two cores produced the same traces and the same compensation.
void expectStatsEqual(const TraceStats &Fast, const TraceStats &Ref,
                      const std::string &What) {
  EXPECT_EQ(Fast.Traces, Ref.Traces) << What;
  EXPECT_EQ(Fast.MultiBlockTraces, Ref.MultiBlockTraces) << What;
  EXPECT_EQ(Fast.LongestTrace, Ref.LongestTrace) << What;
  EXPECT_EQ(Fast.CompensationBlocks, Ref.CompensationBlocks) << What;
  EXPECT_EQ(Fast.CompensationInstrs, Ref.CompensationInstrs) << What;
  EXPECT_EQ(Fast.Formed, Ref.Formed) << What;
}

/// Runs both trace cores on copies of \p M under both weight models and
/// requires byte-identical functions, identical stats, clean verification,
/// and the interpreter checksum \p M had before scheduling. Returns the
/// fast core's stats from the Balanced run so callers can assert the shape
/// actually exercised compensation.
TraceStats expectTwinEquivalence(const Module &M, const std::string &What) {
  InterpResult Profile = interpret(M);
  EXPECT_TRUE(Profile.Finished) << What;
  TraceStats Out;
  for (auto Kind : {sched::SchedulerKind::Traditional,
                    sched::SchedulerKind::Balanced}) {
    Module FastM = M;
    Module RefM = M;
    TraceStats FS = traceScheduleFunction(FastM, Profile, Kind, {},
                                          TraceImpl::Fast);
    TraceStats RS = traceScheduleFunction(RefM, Profile, Kind, {},
                                          TraceImpl::Reference);
    EXPECT_EQ(printFunction(FastM.Fn), printFunction(RefM.Fn))
        << What << ": fast trace core diverged from the reference twin";
    expectStatsEqual(FS, RS, What);
    EXPECT_EQ(ir::verify(FastM), "") << What << "\n" << printFunction(FastM.Fn);
    EXPECT_EQ(ir::verify(RefM), "") << What << "\n" << printFunction(RefM.Fn);
    InterpResult After = interpret(FastM);
    EXPECT_TRUE(After.Finished) << What;
    EXPECT_EQ(After.Checksum, Profile.Checksum)
        << What << ": trace scheduling changed program behaviour";
    if (Kind == sched::SchedulerKind::Balanced)
      Out = FS;
  }
  return Out;
}

Module parseIR(const char *Text) {
  ParseIRResult R = parseModule(Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential-config sweep over the workload suite
//===----------------------------------------------------------------------===//

/// Every trace-scheduling configuration of the canonical differential list
/// (including the trace-hostile one with if-conversion off) compiles every
/// workload to the same bytes under both trace cores. Both compiles use the
/// fast scheduler core, so only the trace implementation differs.
TEST(TraceEquivalence, DifferentialConfigSweep) {
  for (const driver::CompileOptions &Opts : test::fuzzConfigs()) {
    if (!Opts.TraceScheduling)
      continue;
    for (const driver::Workload &W : driver::workloads()) {
      lang::Program P = driver::parseWorkload(W);
      driver::CompileOptions RefOpts = Opts;
      RefOpts.TraceImpl = TraceImpl::Reference;
      driver::CompileResult Fast = driver::compileProgram(P, Opts);
      driver::CompileResult Ref = driver::compileProgram(P, RefOpts);
      ASSERT_TRUE(Fast.ok()) << W.Name << " [" << Opts.tag() << "]: "
                             << Fast.Error;
      ASSERT_TRUE(Ref.ok()) << W.Name << " [" << Opts.tag() << "]: "
                            << Ref.Error;
      std::string What = std::string(W.Name) + " [" + Opts.tag() + "]";
      EXPECT_EQ(printFunction(Fast.M.Fn), printFunction(Ref.M.Fn))
          << What << ": fast trace core diverged from the reference twin";
      expectStatsEqual(Fast.Trace, Ref.Trace, What);
    }
  }
}

//===----------------------------------------------------------------------===//
// Compensation-heavy CFG stress
//===----------------------------------------------------------------------===//

/// A cold arm entering the hot trace from the side: the loop body splits
/// into a dominant arm (90/100) and a cold arm, both jumping to the shared
/// latch. The trace is header/split/hot-arm/latch, so the cold arm's edge is
/// a side entrance into the last trace block; latch instructions hoisted
/// above the join need a compensation copy on that edge. The latch carries
/// cheap integer work that is ready immediately while the hot arm stalls on
/// floating-point latency, so the hoist (and the compensation) happens.
TEST(TraceEquivalence, SideEntranceIntoTrace) {
  const char *Text = R"(
array Out 8 output
func sideentry
b0:
  ldi v0, 0
  ldi v1, 64
  ldi v2, 100
  ldi v3, 90
  fldi v4, 1.5
  jmp b1
b1:
  cmplt v5, v0, v2
  br v5, b2, b6
b2:
  cmplt v6, v0, v3
  br v6, b3, b4
b3:
  itof v7, v0
  fmul v8, v7, v4
  fadd v9, v8, v4
  fst v9, 0(v1)
  jmp b5
b4:
  itof v10, v0
  fadd v11, v10, v10
  fst v11, 8(v1)
  jmp b5
b5:
  add v0, v0, #1
  sll v12, v0, #1
  xor v13, v12, v0
  st v13, 16(v1)
  jmp b1
b6:
  ret
)";
  Module M = parseIR(Text);
  TraceStats S = expectTwinEquivalence(M, "SideEntranceIntoTrace");
  EXPECT_GE(S.MultiBlockTraces, 1) << "hot path should form a trace";
  EXPECT_GT(S.CompensationInstrs, 0)
      << "side entrance should force compensation copies";
}

/// Two biased diamonds back to back inside one loop: the trace runs
/// header/split1/hot1/join1/hot2/join2, so it contains two joins fed by two
/// distinct cold arms — two independent compensation sites whose blocks the
/// fast core must append in the same order as the reference.
TEST(TraceEquivalence, MultiJoinTrace) {
  const char *Text = R"(
array Out 8 output
func multijoin
b0:
  ldi v0, 0
  ldi v1, 64
  ldi v2, 120
  ldi v3, 100
  ldi v4, 110
  fldi v5, 0.5
  jmp b1
b1:
  cmplt v6, v0, v2
  br v6, b2, b9
b2:
  cmplt v7, v0, v3
  br v7, b3, b4
b3:
  itof v8, v0
  fmul v9, v8, v5
  jmp b5
b4:
  itof v10, v0
  fadd v9, v10, v5
  jmp b5
b5:
  fst v9, 0(v1)
  add v11, v0, #3
  cmplt v12, v0, v4
  br v12, b6, b7
b6:
  fadd v13, v9, v5
  jmp b8
b7:
  fmul v13, v9, v9
  jmp b8
b8:
  fst v13, 8(v1)
  add v0, v0, #1
  xor v14, v11, v0
  st v14, 16(v1)
  jmp b1
b9:
  ret
)";
  Module M = parseIR(Text);
  TraceStats S = expectTwinEquivalence(M, "MultiJoinTrace");
  EXPECT_GE(S.LongestTrace, 4) << "both diamonds should fold into one trace";
}

/// A peeled first iteration falling into a loop: the trace grows backward
/// from the hot header into the peeled block, so the loop's own back edge
/// becomes a join into the middle of the trace — and its source (the latch)
/// is itself a trace block. Compensation on that edge must retarget an
/// on-trace terminator to the new block, the subtlest path of the fast
/// core's incremental predecessor bookkeeping.
TEST(TraceEquivalence, PeeledLoopBackEdgeJoin) {
  const char *Text = R"(
array Out 8 output
func peeled
b0:
  ldi v0, 0
  ldi v1, 64
  ldi v2, 100
  fldi v3, 2.0
  fldi v4, 0.0
  jmp b1
b1:
  fadd v4, v4, v3
  fst v4, 0(v1)
  jmp b2
b2:
  cmplt v5, v0, v2
  br v5, b3, b4
b3:
  itof v6, v0
  fmul v7, v6, v3
  fadd v4, v4, v7
  fst v4, 8(v1)
  add v0, v0, #1
  sll v8, v0, #2
  st v8, 16(v1)
  jmp b2
b4:
  ret
)";
  Module M = parseIR(Text);
  TraceStats S = expectTwinEquivalence(M, "PeeledLoopBackEdgeJoin");
  EXPECT_GE(S.MultiBlockTraces, 1) << "peeled entry should join the trace";
}

/// The same stress shapes lowered from source through the full front end:
/// nested biased conditionals yield a trace with several joins at once, and
/// the trace-hostile driver config (if-conversion off) keeps every diamond
/// alive. Checked end-to-end through compileProgram so regalloc runs over
/// the compensation blocks of both cores.
TEST(TraceEquivalence, LoweredNestedDiamonds) {
  const char *Src = R"(
array A[256] output;
var t = 0.0;
for (i = 0; i < 256; i += 1) {
  if (i < 200) {
    if (i < 150) {
      t = t + 1.0;
    } else {
      t = t * 1.5;
    }
    A[i] = t * 2.0;
  } else {
    t = t - 1.0;
    A[i] = t * 0.5;
  }
  A[i] = A[i] + i;
}
)";
  lang::ParseResult PR = lang::parseProgram(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  ASSERT_EQ(lang::checkProgram(PR.Prog), "");

  // Trace-pass-level twin check on the branchy lowering.
  lower::LowerOptions LOpts;
  LOpts.IfConversion = false;
  lower::LowerResult LR = lower::lowerProgram(PR.Prog, LOpts);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  TraceStats S = expectTwinEquivalence(LR.M, "LoweredNestedDiamonds");
  EXPECT_GE(S.MultiBlockTraces, 1);

  // End-to-end twin check under the trace-hostile configuration, with
  // unrolling on top so the trace spans peeled iterations.
  for (int Unroll : {1, 4}) {
    driver::CompileOptions Opts;
    Opts.TraceScheduling = true;
    Opts.Lower.IfConversion = false;
    Opts.UnrollFactor = Unroll;
    driver::CompileOptions RefOpts = Opts;
    RefOpts.TraceImpl = TraceImpl::Reference;
    driver::CompileResult Fast = driver::compileProgram(PR.Prog, Opts);
    driver::CompileResult Ref = driver::compileProgram(PR.Prog, RefOpts);
    ASSERT_TRUE(Fast.ok()) << Fast.Error;
    ASSERT_TRUE(Ref.ok()) << Ref.Error;
    std::string What = "LoweredNestedDiamonds LU" + std::to_string(Unroll);
    EXPECT_EQ(printFunction(Fast.M.Fn), printFunction(Ref.M.Fn)) << What;
    expectStatsEqual(Fast.Trace, Ref.Trace, What);
  }
}
