//===- tests/sim_equivalence_test.cpp - Fast vs reference simulator --------===//
//
// The twin contract for the simulator rewrite: SimImpl::Fast (predecoded
// micro-ops, MRU/one-probe memory-system fast paths, run-based fetch) must
// reproduce SimImpl::Reference (the preserved seed simulator) bit for bit —
// every SimResult field, not just the checksum — across the full workload
// suite and a spread of machine configurations chosen to drive every fast
// path and its fallback:
//
//  * the full 21164 hierarchy (runs the fetch-run and MRU machinery hard);
//  * the 1993 simple stochastic model (RNG draw ordering);
//  * PerfectFrontEnd (no fetch modeling at all);
//  * superscalar widths (issue-group bookkeeping);
//  * a starved machine (1-2 entry TLBs/MSHRs/write buffer: every stall
//    path, constant MSHR pressure, TLB thrash);
//  * non-power-of-two geometries (division/modulo fallbacks instead of the
//    shift/mask paths, including a non-power-of-two page size).
//
// Budget-capped runs are compared too: the two cores must stop at the same
// cycle with identical partial statistics.
//
//===----------------------------------------------------------------------===//

#include "TestConfigs.h"

#include "driver/Experiment.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;
using namespace bsched::sim;

// The machine-model builders live in src/fuzz/Configs.cpp now, shared with
// the coverage-guided fuzzer; these aliases keep the test bodies readable.
using fuzz::oddGeometryMachine;
using fuzz::perfectFrontEndMachine;
using fuzz::simpleModelMachine;
using fuzz::starvedMachine;
using fuzz::widthMachine;

namespace {

/// Asserts every field of two SimResults equal.
void expectSimEqual(const SimResult &F, const SimResult &R,
                    const std::string &What) {
  EXPECT_EQ(F.Error, R.Error) << What;
  EXPECT_EQ(F.Finished, R.Finished) << What;
  EXPECT_EQ(F.Checksum, R.Checksum) << What;
  EXPECT_EQ(F.Cycles, R.Cycles) << What;
  EXPECT_EQ(F.Counts.ShortInt, R.Counts.ShortInt) << What;
  EXPECT_EQ(F.Counts.LongInt, R.Counts.LongInt) << What;
  EXPECT_EQ(F.Counts.ShortFp, R.Counts.ShortFp) << What;
  EXPECT_EQ(F.Counts.LongFp, R.Counts.LongFp) << What;
  EXPECT_EQ(F.Counts.Loads, R.Counts.Loads) << What;
  EXPECT_EQ(F.Counts.Stores, R.Counts.Stores) << What;
  EXPECT_EQ(F.Counts.Branches, R.Counts.Branches) << What;
  EXPECT_EQ(F.Counts.Spills, R.Counts.Spills) << What;
  EXPECT_EQ(F.Counts.Restores, R.Counts.Restores) << What;
  EXPECT_EQ(F.LoadInterlockCycles, R.LoadInterlockCycles) << What;
  EXPECT_EQ(F.FixedInterlockCycles, R.FixedInterlockCycles) << What;
  EXPECT_EQ(F.ICacheStallCycles, R.ICacheStallCycles) << What;
  EXPECT_EQ(F.ITlbStallCycles, R.ITlbStallCycles) << What;
  EXPECT_EQ(F.DTlbStallCycles, R.DTlbStallCycles) << What;
  EXPECT_EQ(F.BranchPenaltyCycles, R.BranchPenaltyCycles) << What;
  EXPECT_EQ(F.MshrStallCycles, R.MshrStallCycles) << What;
  EXPECT_EQ(F.WriteBufferStallCycles, R.WriteBufferStallCycles) << What;
  EXPECT_EQ(F.L1D.Accesses, R.L1D.Accesses) << What;
  EXPECT_EQ(F.L1D.Misses, R.L1D.Misses) << What;
  EXPECT_EQ(F.L2.Accesses, R.L2.Accesses) << What;
  EXPECT_EQ(F.L2.Misses, R.L2.Misses) << What;
  EXPECT_EQ(F.L3.Accesses, R.L3.Accesses) << What;
  EXPECT_EQ(F.L3.Misses, R.L3.Misses) << What;
  EXPECT_EQ(F.L1I.Accesses, R.L1I.Accesses) << What;
  EXPECT_EQ(F.L1I.Misses, R.L1I.Misses) << What;
  EXPECT_EQ(F.DTlbMisses, R.DTlbMisses) << What;
  EXPECT_EQ(F.ITlbMisses, R.ITlbMisses) << What;
  EXPECT_EQ(F.BranchMispredicts, R.BranchMispredicts) << What;
}

/// Runs both cores on \p M and asserts bit-identical results.
void expectTwinsAgree(const ir::Module &M, MachineConfig C,
                      uint64_t MaxCycles, const std::string &What) {
  C.Impl = SimImpl::Fast;
  SimResult F = simulate(M, C, MaxCycles);
  C.Impl = SimImpl::Reference;
  SimResult R = simulate(M, C, MaxCycles);
  expectSimEqual(F, R, What);
}

} // namespace

/// The core grid: every workload under the machine models the experiments
/// actually use (full 21164, the 1993 simple model, back-end-only), capped
/// so the reference core's cost stays bounded. 51 workload x config points.
TEST(SimEquivalence, AllWorkloadsCoreConfigs) {
  CompileOptions Opts;
  Opts.UnrollFactor = 4;
  Opts.VerifyPasses = false;
  const MachineConfig Configs[] = {MachineConfig{}, simpleModelMachine(0.8),
                                   perfectFrontEndMachine()};
  const char *Tags[] = {"21164", "simple80", "pfe"};
  for (const Workload &W : workloads()) {
    lang::Program P = parseWorkload(W);
    CompileResult C = compileProgram(P, Opts);
    ASSERT_TRUE(C.ok()) << W.Name << ": " << C.Error;
    for (size_t I = 0; I != 3; ++I)
      expectTwinsAgree(C.M, Configs[I], /*MaxCycles=*/1000000,
                       std::string(W.Name) + " [" + Tags[I] + "]");
  }
}

/// Stress configurations on a subset of workloads: superscalar widths,
/// starved resources, non-power-of-two geometries, the 0.95 simple model.
TEST(SimEquivalence, StressConfigs) {
  CompileOptions Opts;
  Opts.UnrollFactor = 8;
  Opts.TraceScheduling = true;
  Opts.RegAlloc.AllocatablePerClass = 8; // spills: restores hammer the L1D
  Opts.VerifyPasses = false;
  struct Point {
    const char *Tag;
    MachineConfig C;
  };
  const Point Points[] = {
      {"w2", widthMachine(2)},           {"w4+pfe", widthMachine(4, true)},
      {"starved", starvedMachine()},     {"oddgeom", oddGeometryMachine()},
      {"simple95", simpleModelMachine(0.95)},
  };
  const auto &All = workloads();
  for (size_t WI = 0; WI < All.size() && WI < 5; ++WI) {
    lang::Program P = parseWorkload(All[WI]);
    CompileResult C = compileProgram(P, Opts);
    ASSERT_TRUE(C.ok()) << All[WI].Name << ": " << C.Error;
    for (const Point &Pt : Points)
      expectTwinsAgree(C.M, Pt.C, /*MaxCycles=*/600000,
                       std::string(All[WI].Name) + " [" + Pt.Tag + "]");
  }
}

/// Uncapped runs: the twins agree through to completion, including the
/// checksum and the exact final cycle.
TEST(SimEquivalence, FullRunsToCompletion) {
  CompileOptions Opts;
  Opts.VerifyPasses = false;
  const auto &All = workloads();
  for (size_t WI = 0; WI < All.size() && WI < 3; ++WI) {
    lang::Program P = parseWorkload(All[WI]);
    CompileResult C = compileProgram(P, Opts);
    ASSERT_TRUE(C.ok()) << All[WI].Name << ": " << C.Error;
    MachineConfig M;
    M.Impl = SimImpl::Fast;
    SimResult F = simulate(C.M, M);
    ASSERT_TRUE(F.Finished) << All[WI].Name;
    M.Impl = SimImpl::Reference;
    SimResult R = simulate(C.M, M);
    ASSERT_TRUE(R.Finished) << All[WI].Name;
    expectSimEqual(F, R, All[WI].Name);
  }
}

/// Tiny cycle budgets slice execution at arbitrary points — including
/// mid-run in the fetch machinery and mid-stall; the partial statistics
/// must still match exactly at every cut.
TEST(SimEquivalence, BudgetCutsAgreeEverywhere) {
  CompileOptions Opts;
  Opts.VerifyPasses = false;
  lang::Program P = parseWorkload(workloads().front());
  CompileResult C = compileProgram(P, Opts);
  ASSERT_TRUE(C.ok()) << C.Error;
  for (uint64_t Cap : {0ull, 1ull, 7ull, 100ull, 1000ull, 5000ull, 50000ull})
    expectTwinsAgree(C.M, MachineConfig{}, Cap,
                     "budget " + std::to_string(Cap));
}
