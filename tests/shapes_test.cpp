//===- tests/shapes_test.cpp - The reproduction contract, as assertions ----===//
//
// Guards the paper's qualitative results against regressions: if a change
// to the scheduler, transforms, allocator or simulator flips one of these
// orderings, the reproduction is broken even if every program still
// computes correctly. Uses a fast subset of the workload so the suite stays
// quick; the bench binaries measure the full set.
//
//===----------------------------------------------------------------------===//

#include "driver/Experiment.h"

#include <gtest/gtest.h>

using namespace bsched;
using namespace bsched::driver;

namespace {

CompileOptions opts(sched::SchedulerKind K, int LU = 1, bool TrS = false,
                    bool LA = false) {
  CompileOptions O;
  O.Scheduler = K;
  O.UnrollFactor = LU;
  O.TraceScheduling = TrS;
  O.LocalityAnalysis = LA;
  return O;
}

const RunResult &run(const char *Name, const CompileOptions &O) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr);
  const RunResult &R = runCached(*W, O);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R;
}

// A fast, representative subset: a stencil (hydro2d), an irregular kernel
// (spice2g6), a fixed-latency-bound kernel (MDG), a big-block kernel
// (BDNA), and the locality star (tomcatv).
const char *Fast[] = {"hydro2d", "spice2g6", "MDG", "BDNA", "tomcatv"};

} // namespace

TEST(Shapes, BalancedBeatsTraditionalOnAverage) {
  std::vector<double> Sp;
  for (const char *N : Fast)
    Sp.push_back(speedup(run(N, opts(sched::SchedulerKind::Traditional)),
                         run(N, opts(sched::SchedulerKind::Balanced))));
  EXPECT_GE(mean(Sp), 1.04) << "the paper's headline 1.05x advantage";
}

TEST(Shapes, BalancedHidesMoreLoadInterlocks) {
  // On every subset kernel with load interlocks, BS's share must not exceed
  // TS's by more than noise; on the stencil/irregular ones it must be
  // clearly lower.
  for (const char *N : {"hydro2d", "spice2g6", "BDNA"}) {
    const RunResult &BS = run(N, opts(sched::SchedulerKind::Balanced));
    const RunResult &TS = run(N, opts(sched::SchedulerKind::Traditional));
    EXPECT_LT(BS.Sim.loadInterlockShare(), TS.Sim.loadInterlockShare())
        << N;
  }
}

TEST(Shapes, UnrollingSpeedsUpBalancedCode) {
  for (const char *N : {"hydro2d", "tomcatv"}) {
    const RunResult &Base = run(N, opts(sched::SchedulerKind::Balanced));
    const RunResult &LU4 = run(N, opts(sched::SchedulerKind::Balanced, 4));
    EXPECT_GT(speedup(Base, LU4), 1.2) << N;
  }
  // BDNA's big block trips the instruction limit: nearly flat.
  const RunResult &Base = run("BDNA", opts(sched::SchedulerKind::Balanced));
  const RunResult &LU4 = run("BDNA", opts(sched::SchedulerKind::Balanced, 4));
  EXPECT_LT(speedup(Base, LU4), 1.1);
}

TEST(Shapes, UnrollingGrowsTheBalancedAdvantage) {
  // Paper Table 5: the BS-over-TS average rises from no-LU to LU4.
  std::vector<double> NoLU, LU4;
  for (const char *N : Fast) {
    NoLU.push_back(speedup(run(N, opts(sched::SchedulerKind::Traditional)),
                           run(N, opts(sched::SchedulerKind::Balanced))));
    LU4.push_back(
        speedup(run(N, opts(sched::SchedulerKind::Traditional, 4)),
                run(N, opts(sched::SchedulerKind::Balanced, 4))));
  }
  // On this 5-kernel subset the means are within noise of each other; the
  // full-workload benches show the paper's growth. Guard against a real
  // regression (a >3% drop), not subset jitter.
  EXPECT_GE(mean(LU4), mean(NoLU) - 0.03)
      << "the advantage must not shrink materially under unrolling";
}

TEST(Shapes, TraceSchedulingAloneBringsLittle) {
  std::vector<double> Sp;
  for (const char *N : Fast)
    Sp.push_back(
        speedup(run(N, opts(sched::SchedulerKind::Balanced)),
                run(N, opts(sched::SchedulerKind::Balanced, 1, true))));
  EXPECT_LT(mean(Sp), 1.06) << "paper: 'trace scheduling alone brought "
                               "little benefit for this workload'";
  EXPECT_GT(mean(Sp), 0.97);
}

TEST(Shapes, LocalityAnalysisStarsOnTomcatv) {
  const RunResult &Base = run("tomcatv", opts(sched::SchedulerKind::Balanced));
  const RunResult &LA =
      run("tomcatv", opts(sched::SchedulerKind::Balanced, 1, false, true));
  EXPECT_GT(speedup(Base, LA), 1.3)
      << "paper: tomcatv's LA speedup was 1.5";
  // And the mechanism: the load-interlock share collapses.
  EXPECT_LT(LA.Sim.loadInterlockShare(),
            Base.Sim.loadInterlockShare() * 0.5);
}

TEST(Shapes, LocalityGetsNothingFromIrregularAccess) {
  const RunResult &Base =
      run("spice2g6", opts(sched::SchedulerKind::Balanced));
  const RunResult &LA =
      run("spice2g6", opts(sched::SchedulerKind::Balanced, 1, false, true));
  double Sp = speedup(Base, LA);
  EXPECT_LT(Sp, 1.10) << "indirect subscripts defeat the analysis";
  EXPECT_GT(Sp, 0.95);
}

TEST(Shapes, FixedLatencyKernelsSeeNoBalancedWin) {
  // MDG's divide chain: both schedulers within noise of each other.
  double Sp = speedup(run("MDG", opts(sched::SchedulerKind::Traditional)),
                      run("MDG", opts(sched::SchedulerKind::Balanced)));
  EXPECT_NEAR(Sp, 1.0, 0.05);
}

TEST(Shapes, SpillsAppearAtUnrollByEightWherePredicted) {
  const RunResult &Tom =
      run("tomcatv", opts(sched::SchedulerKind::Balanced, 8));
  EXPECT_GT(Tom.RegAlloc.SpillStores + Tom.RegAlloc.RestoreLoads, 0)
      << "tomcatv is a paper-named register-pressure case at x8";
  const RunResult &Spice =
      run("spice2g6", opts(sched::SchedulerKind::Balanced, 8));
  // spice2g6's small blocks create no scheduling pressure; any spill
  // traffic (hoisted invariants) must be dynamically negligible.
  EXPECT_LT(Spice.Sim.Counts.Spills + Spice.Sim.Counts.Restores,
            Spice.Sim.Counts.total() / 50)
      << "spice2g6 must not pay materially for spills";
}

TEST(Shapes, SimpleModelOverstatesTheAdvantage) {
  // Section 5.5 on the subset: simple-model BS advantage >= full-model's.
  sim::MachineConfig Simple;
  Simple.SimpleModel = true;
  Simple.SimpleHitRate = 0.80;
  std::vector<double> SimpleSp, FullSp;
  for (const char *N : {"hydro2d", "BDNA", "tomcatv"}) {
    const Workload &W = *findWorkload(N);
    SimpleSp.push_back(
        speedup(runCached(W, opts(sched::SchedulerKind::Traditional), Simple),
                runCached(W, opts(sched::SchedulerKind::Balanced), Simple)));
    FullSp.push_back(speedup(run(N, opts(sched::SchedulerKind::Traditional)),
                             run(N, opts(sched::SchedulerKind::Balanced))));
  }
  // Subset noise allowance; the full four-kernel section-5.5 bench shows
  // the simple model clearly ahead (23% vs 15%).
  EXPECT_GE(mean(SimpleSp), mean(FullSp) - 0.04);
}
