//===- tests/robustness_test.cpp - Error paths never crash -----------------===//
//
// Feeds malformed, truncated and mutated inputs to the language parser, the
// IR parser and the driver: every path must return a diagnostic, never
// crash, and never accept garbage silently.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "ir/IRParser.h"
#include "lang/Generate.h"
#include "lang/Parser.h"
#include "sim/Report.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace bsched;

TEST(Robustness, LangParserSurvivesTruncations) {
  lang::Program P = lang::generateProgram(9);
  std::string Text = lang::printProgram(P);
  for (size_t Cut = 0; Cut < Text.size(); Cut += 7) {
    lang::ParseResult R = lang::parseProgram(Text.substr(0, Cut));
    if (R.ok())

      // A prefix can be a valid (possibly empty) program; it must still
      // check or produce a diagnostic, not crash.
      lang::checkProgram(R.Prog);
  }
}

TEST(Robustness, LangParserSurvivesMutations) {
  lang::Program P = lang::generateProgram(12);
  std::string Text = lang::printProgram(P);
  RNG Rng(99);
  const char Junk[] = "{}()[];=<>#.%$@\"\\\x01\x7f";
  for (int Trial = 0; Trial != 300; ++Trial) {
    std::string Mutated = Text;
    size_t Where = Rng.nextBelow(Mutated.size());
    Mutated[Where] = Junk[Rng.nextBelow(sizeof(Junk) - 1)];
    lang::ParseResult R = lang::parseProgram(Mutated);
    if (R.ok())
      lang::checkProgram(R.Prog); // must not crash either way
  }
}

TEST(Robustness, LangParserRejectsBinaryGarbage) {
  RNG Rng(5);
  for (int Trial = 0; Trial != 100; ++Trial) {
    std::string Garbage;
    for (int K = 0; K != 200; ++K)
      Garbage.push_back(static_cast<char>(Rng.nextBelow(256)));
    lang::ParseResult R = lang::parseProgram(Garbage);
    (void)R; // No crash is the property; most inputs fail to parse.
  }
}

TEST(Robustness, IRParserSurvivesTruncations) {
  const char *Text = "array A 16\nfunc f\nb0:\n  ldi v0, 64\n"
                     "  fld v1, 0(v0)\n  fadd v2, v1, v1\n  ret\n";
  std::string Full = Text;
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    ir::ParseIRResult R = ir::parseModule(Full.substr(0, Cut));
    (void)R;
  }
}

TEST(Robustness, IRParserSurvivesMutations) {
  const char *Text = "array A 16\nfunc f\nb0:\n  ldi v0, 64\n"
                     "  fld v1, 0(v0)\n  br v0, b0, b1\nb1:\n  ret\n";
  std::string Full = Text;
  RNG Rng(77);
  for (int Trial = 0; Trial != 300; ++Trial) {
    std::string Mutated = Full;
    Mutated[Rng.nextBelow(Mutated.size())] =
        static_cast<char>(32 + Rng.nextBelow(95));
    ir::ParseIRResult R = ir::parseModule(Mutated);
    (void)R;
  }
}

TEST(Robustness, DriverDiagnosesEveryStage) {
  driver::CompileOptions O;
  // Parse error.
  EXPECT_NE(driver::compileSource("for (", "p", O).Error.find("parse"),
            std::string::npos);
  // Check error.
  EXPECT_NE(driver::compileSource("x = 1.0;", "c", O).Error.find("check"),
            std::string::npos);
  // Regalloc error (impossible register budget).
  driver::CompileOptions Bad;
  Bad.RegAlloc.AllocatablePerClass = 31;
  driver::CompileResult R = driver::compileSource(
      "array A[4] output;\nA[0] = 1.0;\n", "r", Bad);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("regalloc"), std::string::npos);
}

TEST(Robustness, ReportHandlesErrorResults) {
  sim::SimResult Bad;
  Bad.Error = "synthetic failure";
  std::string Out = sim::printReport(Bad, "title");
  EXPECT_NE(Out.find("synthetic failure"), std::string::npos);

  sim::SimResult Unfinished; // Finished = false, no error
  Unfinished.Cycles = 10;
  std::string Out2 = sim::printReport(Unfinished);
  EXPECT_NE(Out2.find("budget"), std::string::npos);
}

TEST(Robustness, SummaryLineIsOneLine) {
  sim::SimResult R;
  R.Cycles = 100;
  R.Counts.Loads = 10;
  R.LoadInterlockCycles = 25;
  std::string S = sim::printSummaryLine(R);
  EXPECT_EQ(S.find('\n'), std::string::npos);
  EXPECT_NE(S.find("li=25.0%"), std::string::npos);
}
