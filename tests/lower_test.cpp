//===- tests/lower_test.cpp - Lowering correctness tests ------------------===//
//
// Differential tests: for each program, the lowered IR run under the IR
// interpreter must produce the same output checksum as the AST evaluator.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"
#include "lang/Eval.h"
#include "lang/Parser.h"
#include "lower/Lower.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

lang::Program parseOk(const std::string &Src) {
  lang::ParseResult R = lang::parseProgram(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  std::string CheckErr = lang::checkProgram(R.Prog);
  EXPECT_EQ(CheckErr, "");
  return std::move(R.Prog);
}

/// Lowers with the given options and checks the interpreter's checksum
/// matches the AST evaluator's.
void expectEquivalent(const std::string &Src, lower::LowerOptions Opts = {}) {
  lang::Program P = parseOk(Src);
  lang::EvalResult Ref = lang::evalProgram(P);
  ASSERT_TRUE(Ref.ok()) << Ref.Error;
  lower::LowerResult LR = lower::lowerProgram(P, Opts);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  ir::InterpResult IR = ir::interpret(LR.M);
  ASSERT_TRUE(IR.Finished);
  EXPECT_EQ(IR.Checksum, Ref.Checksum) << lang::printProgram(P);
}

const char *InitAndSum = R"(
array A[32] output;
var s = 0.0;
for (i = 0; i < 32; i += 1) { A[i] = i * 2 + 1; }
for (i = 0; i < 32; i += 1) { s = s + A[i]; }
A[0] = s;
)";

const char *Mat2D = R"(
array A[8][12];
array B[8][12];
array C[8][12] output;
for (i = 0; i < 8; i += 1) {
  for (j = 0; j < 12; j += 1) {
    A[i][j] = i + j * 3;
    B[i][j] = i * j;
  }
}
for (i = 0; i < 8; i += 1) {
  for (j = 0; j < 12; j += 1) {
    C[i][j] = A[i][j] * 2.0 + B[i][j];
  }
}
)";

const char *ColMajor = R"(
array F[6][10] colmajor output;
for (i = 0; i < 6; i += 1) {
  for (j = 0; j < 10; j += 1) {
    F[i][j] = i * 100 + j;
  }
}
)";

const char *Branchy = R"(
array A[64] output;
var t = 0.0;
for (i = 0; i < 64; i += 1) {
  if (i - (i / 2.0 + i / 2.0) < 0.5) { t = 1.0; } else { t = 2.0; }
  if (i < 32) {
    A[i] = t + i;
  } else {
    A[i] = t - i;
    if (i > 50) { A[i] = A[i] * 2.0; }
  }
}
)";

const char *IndexArray = R"(
array idx[16] int;
array A[16] output;
for (i = 0; i < 16; i += 1) { idx[i] = 15 - i; }
for (i = 0; i < 16; i += 1) { A[idx[i]] = i * 1.5; }
)";

const char *TriangularLoop = R"(
array A[12][12] output;
for (i = 0; i < 12; i += 1) {
  for (j = i; j < 12; j += 1) {
    A[i][j] = i * 12 + j;
  }
}
)";

const char *LogicalOps = R"(
array A[40] output;
for (i = 0; i < 40; i += 1) {
  if ((i > 3 && i < 10) || i == 20 || !(i < 35)) {
    A[i] = 1.0;
  }
}
)";

const char *StridedLoop = R"(
array A[64] output;
for (i = 0; i < 64; i += 4) { A[i] = i + 0.5; }
)";

const char *EmptyTripLoop = R"(
array A[4] output;
var n int = 0;
for (i = 3; i < n; i += 1) { A[0] = 9.0; }
A[1] = 1.0;
)";

const char *ScalarMixing = R"(
array Out[4] output;
var x = 1.5;
var n int = 7;
var m int = 3;
Out[0] = n * m + x;
Out[1] = n / 2.0;
Out[2] = -x;
Out[3] = n - m * 2;
)";

} // namespace

TEST(Lower, InitAndSum) { expectEquivalent(InitAndSum); }
TEST(Lower, Mat2D) { expectEquivalent(Mat2D); }
TEST(Lower, ColMajor) { expectEquivalent(ColMajor); }
TEST(Lower, Branchy) { expectEquivalent(Branchy); }
TEST(Lower, IndexArray) { expectEquivalent(IndexArray); }
TEST(Lower, TriangularLoop) { expectEquivalent(TriangularLoop); }
TEST(Lower, LogicalOps) { expectEquivalent(LogicalOps); }
TEST(Lower, StridedLoop) { expectEquivalent(StridedLoop); }
TEST(Lower, EmptyTripLoop) { expectEquivalent(EmptyTripLoop); }
TEST(Lower, ScalarMixing) { expectEquivalent(ScalarMixing); }

TEST(Lower, OptionsOffStillCorrect) {
  lower::LowerOptions Opts;
  Opts.IfConversion = false;
  Opts.StrengthReduction = false;
  expectEquivalent(InitAndSum, Opts);
  expectEquivalent(Mat2D, Opts);
  expectEquivalent(Branchy, Opts);
  expectEquivalent(TriangularLoop, Opts);
}

TEST(Lower, StrengthReductionSharesAddressRegisters) {
  // A[i] and A[i+1] must use the same base register with different
  // displacements.
  lang::Program P = parseOk("array A[32];\narray B[32] output;\n"
                            "for (i = 0; i < 31; i += 1) {"
                            " B[i] = A[i] + A[i + 1]; }\n");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  // Find the two loads from A in the loop body and compare bases.
  std::vector<const ir::Instr *> Loads;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      if (I.Op == ir::Opcode::FLoad && I.Mem.ArrayId == 0)
        Loads.push_back(&I);
  ASSERT_EQ(Loads.size(), 2u);
  EXPECT_EQ(Loads[0]->Base, Loads[1]->Base);
  EXPECT_EQ(Loads[1]->Offset - Loads[0]->Offset, 8);
}

TEST(Lower, AffineMemRefsAreExact) {
  lang::Program P = parseOk("array A[8][8];\narray C[8][8] output;\n"
                            "for (i = 0; i < 8; i += 1) {"
                            " for (j = 0; j < 8; j += 1) {"
                            "  C[i][j] = A[i][j]; } }\n");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  int ExactMemOps = 0;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      if (I.isMem() && I.Mem.HasForm)
        ++ExactMemOps;
  EXPECT_EQ(ExactMemOps, 2);
}

TEST(Lower, NonAffineMemRefKeepsArrayIdentity) {
  lang::Program P = parseOk("array idx[8] int;\narray A[8] output;\n"
                            "for (i = 0; i < 8; i += 1) {"
                            " A[idx[i]] = 1.0; }\n");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  bool FoundInexactStore = false;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      if (I.Op == ir::Opcode::FStore && !I.Mem.HasForm && I.Mem.ArrayId == 1)
        FoundInexactStore = true;
  EXPECT_TRUE(FoundInexactStore);
}

TEST(Lower, PredicableIfBecomesCMov) {
  lang::Program P = parseOk("array Out[8] output;\nvar t = 0.0;\n"
                            "for (i = 0; i < 8; i += 1) {"
                            " if (i < 4) { t = 1.0; } else { t = 2.0; }"
                            " Out[i] = t; }\n");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  bool HasCMov = false;
  bool HasBranchDiamond = LR.M.Fn.Blocks.size() > 4;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      if (I.Op == ir::Opcode::FCMov)
        HasCMov = true;
  EXPECT_TRUE(HasCMov);
  EXPECT_FALSE(HasBranchDiamond) << "diamond should have been predicated";
}

TEST(Lower, NonPredicableIfStaysBranchy) {
  // Arm touches an array: must not be speculated by a conditional move.
  lang::Program P = parseOk("array Out[8] output;\n"
                            "for (i = 0; i < 8; i += 1) {"
                            " if (i < 4) { Out[i] = 1.0; } }\n");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks)
    for (const ir::Instr &I : B.Instrs)
      EXPECT_NE(I.Op, ir::Opcode::FCMov);
}

TEST(Lower, RotatedLoopShape) {
  // A straight-line loop body must be a single block ending in a conditional
  // branch back to itself.
  lang::Program P = parseOk("array A[16] output;\n"
                            "for (i = 0; i < 16; i += 1) { A[i] = i; }\n");
  lower::LowerResult LR = lower::lowerProgram(P);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  bool FoundSelfLoop = false;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks) {
    const ir::Instr &T = B.terminator();
    if (T.Op == ir::Opcode::Br && T.Target0 == B.Id)
      FoundSelfLoop = true;
  }
  EXPECT_TRUE(FoundSelfLoop);
}

TEST(Lower, VerifiesAndInterpretsLargeNest) {
  expectEquivalent(R"(
array A[16][16];
array B[16][16];
array C[16][16] output;
var alpha = 0.25;
for (i = 0; i < 16; i += 1) {
  for (j = 0; j < 16; j += 1) {
    A[i][j] = i - j;
    B[i][j] = i + 2 * j;
  }
}
for (i = 0; i < 16; i += 1) {
  for (k = 0; k < 16; k += 1) {
    for (j = 0; j < 16; j += 1) {
      C[i][j] = C[i][j] + A[i][k] * B[k][j] * alpha;
    }
  }
}
)");
}

TEST(Lower, IsPredicableClassifier) {
  lang::Program P =
      parseOk("var t = 0.0;\narray A[4] output;\n"
              "if (t < 1.0) { t = 2.0; }\n"              // predicable
              "if (t < 1.0) { t = 2.0; } else { t = 3.0; }\n" // predicable
              "if (t < 1.0) { A[0] = 2.0; }\n"           // array store: no
              "if (t < A[1]) { t = 2.0; }\n"             // array load: no
              "if (t < 1.0) { t = 1.0; A[0] = t; }\n");  // two stmts: no
  EXPECT_TRUE(lower::isPredicable(*P.Body[0]));
  EXPECT_TRUE(lower::isPredicable(*P.Body[1]));
  EXPECT_FALSE(lower::isPredicable(*P.Body[2]));
  EXPECT_FALSE(lower::isPredicable(*P.Body[3]));
  EXPECT_FALSE(lower::isPredicable(*P.Body[4]));
}

TEST(Lower, OuterLoopRefsAfterInnerLoop) {
  // Regression: strength-reduced address registers of an OUTER loop must be
  // advanced in its latch even when the body contains nested loops (the
  // nested lowering used to invalidate the outer loop's context).
  expectEquivalent(R"(
array Y[8] output;
var acc = 0.0;
for (i = 0; i < 8; i += 1) {
  acc = 0.0;
  for (j = 0; j < 5; j += 1) { acc = acc + j * 0.5; }
  Y[i] = acc + i;
}
)");
  expectEquivalent(R"(
array Y[8] output;
for (i = 0; i < 8; i += 1) {
  for (j = 0; j < 3; j += 1) { Y[0] = Y[0] + 1.0; }
  Y[i] = Y[i] + 5.0;
}
)");
}

TEST(Lower, PredicatedArmsReadOldValue) {
  // Regression: both arms of a predicated if may read the destination's old
  // value; the then-value must be computed before the else-value overwrites
  // the variable.
  expectEquivalent(R"(
array A[32] output;
var t = 0.0;
for (i = 0; i < 32; i += 1) {
  if (i < 10) { t = t + 1.5; } else { t = t - 0.5; }
  A[i] = t * i;
}
)");
}
