file(REMOVE_RECURSE
  "CMakeFiles/builder_api.dir/builder_api.cpp.o"
  "CMakeFiles/builder_api.dir/builder_api.cpp.o.d"
  "builder_api"
  "builder_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builder_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
