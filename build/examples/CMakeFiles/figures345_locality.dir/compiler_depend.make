# Empty compiler generated dependencies file for figures345_locality.
# This may be replaced when dependencies are built.
