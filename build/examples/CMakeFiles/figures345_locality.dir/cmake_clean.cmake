file(REMOVE_RECURSE
  "CMakeFiles/figures345_locality.dir/figures345_locality.cpp.o"
  "CMakeFiles/figures345_locality.dir/figures345_locality.cpp.o.d"
  "figures345_locality"
  "figures345_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures345_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
