# Empty dependencies file for figure2_trace.
# This may be replaced when dependencies are built.
