file(REMOVE_RECURSE
  "CMakeFiles/figure1_dag.dir/figure1_dag.cpp.o"
  "CMakeFiles/figure1_dag.dir/figure1_dag.cpp.o.d"
  "figure1_dag"
  "figure1_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
