# Empty compiler generated dependencies file for figure1_dag.
# This may be replaced when dependencies are built.
