file(REMOVE_RECURSE
  "CMakeFiles/irparser_test.dir/irparser_test.cpp.o"
  "CMakeFiles/irparser_test.dir/irparser_test.cpp.o.d"
  "irparser_test"
  "irparser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irparser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
