file(REMOVE_RECURSE
  "CMakeFiles/estimate_profile_test.dir/estimate_profile_test.cpp.o"
  "CMakeFiles/estimate_profile_test.dir/estimate_profile_test.cpp.o.d"
  "estimate_profile_test"
  "estimate_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
