# Empty dependencies file for xform_test.
# This may be replaced when dependencies are built.
