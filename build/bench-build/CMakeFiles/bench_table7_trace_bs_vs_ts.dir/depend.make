# Empty dependencies file for bench_table7_trace_bs_vs_ts.
# This may be replaced when dependencies are built.
