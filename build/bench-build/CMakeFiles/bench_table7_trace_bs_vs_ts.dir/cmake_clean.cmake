file(REMOVE_RECURSE
  "../bench/bench_table7_trace_bs_vs_ts"
  "../bench/bench_table7_trace_bs_vs_ts.pdb"
  "CMakeFiles/bench_table7_trace_bs_vs_ts.dir/bench_table7_trace_bs_vs_ts.cpp.o"
  "CMakeFiles/bench_table7_trace_bs_vs_ts.dir/bench_table7_trace_bs_vs_ts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_trace_bs_vs_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
