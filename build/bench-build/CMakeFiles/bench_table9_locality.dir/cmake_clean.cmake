file(REMOVE_RECURSE
  "../bench/bench_table9_locality"
  "../bench/bench_table9_locality.pdb"
  "CMakeFiles/bench_table9_locality.dir/bench_table9_locality.cpp.o"
  "CMakeFiles/bench_table9_locality.dir/bench_table9_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
