file(REMOVE_RECURSE
  "../bench/bench_extra_hitrate_sweep"
  "../bench/bench_extra_hitrate_sweep.pdb"
  "CMakeFiles/bench_extra_hitrate_sweep.dir/bench_extra_hitrate_sweep.cpp.o"
  "CMakeFiles/bench_extra_hitrate_sweep.dir/bench_extra_hitrate_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_hitrate_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
