# Empty compiler generated dependencies file for bench_extra_hitrate_sweep.
# This may be replaced when dependencies are built.
