file(REMOVE_RECURSE
  "../bench/bench_ablation_weight_cap"
  "../bench/bench_ablation_weight_cap.pdb"
  "CMakeFiles/bench_ablation_weight_cap.dir/bench_ablation_weight_cap.cpp.o"
  "CMakeFiles/bench_ablation_weight_cap.dir/bench_ablation_weight_cap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weight_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
