file(REMOVE_RECURSE
  "../bench/bench_table4_unroll_bs"
  "../bench/bench_table4_unroll_bs.pdb"
  "CMakeFiles/bench_table4_unroll_bs.dir/bench_table4_unroll_bs.cpp.o"
  "CMakeFiles/bench_table4_unroll_bs.dir/bench_table4_unroll_bs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_unroll_bs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
