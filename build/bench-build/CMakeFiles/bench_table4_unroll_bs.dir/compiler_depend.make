# Empty compiler generated dependencies file for bench_table4_unroll_bs.
# This may be replaced when dependencies are built.
