# Empty compiler generated dependencies file for bench_extra_breakdown.
# This may be replaced when dependencies are built.
