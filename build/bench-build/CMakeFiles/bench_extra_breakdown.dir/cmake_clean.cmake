file(REMOVE_RECURSE
  "../bench/bench_extra_breakdown"
  "../bench/bench_extra_breakdown.pdb"
  "CMakeFiles/bench_extra_breakdown.dir/bench_extra_breakdown.cpp.o"
  "CMakeFiles/bench_extra_breakdown.dir/bench_extra_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
