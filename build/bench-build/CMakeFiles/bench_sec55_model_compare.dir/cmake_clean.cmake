file(REMOVE_RECURSE
  "../bench/bench_sec55_model_compare"
  "../bench/bench_sec55_model_compare.pdb"
  "CMakeFiles/bench_sec55_model_compare.dir/bench_sec55_model_compare.cpp.o"
  "CMakeFiles/bench_sec55_model_compare.dir/bench_sec55_model_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec55_model_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
