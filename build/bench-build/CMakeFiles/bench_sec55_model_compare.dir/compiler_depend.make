# Empty compiler generated dependencies file for bench_sec55_model_compare.
# This may be replaced when dependencies are built.
