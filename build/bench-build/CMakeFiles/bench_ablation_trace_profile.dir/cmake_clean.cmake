file(REMOVE_RECURSE
  "../bench/bench_ablation_trace_profile"
  "../bench/bench_ablation_trace_profile.pdb"
  "CMakeFiles/bench_ablation_trace_profile.dir/bench_ablation_trace_profile.cpp.o"
  "CMakeFiles/bench_ablation_trace_profile.dir/bench_ablation_trace_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trace_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
