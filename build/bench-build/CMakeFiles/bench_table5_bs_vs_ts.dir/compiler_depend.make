# Empty compiler generated dependencies file for bench_table5_bs_vs_ts.
# This may be replaced when dependencies are built.
