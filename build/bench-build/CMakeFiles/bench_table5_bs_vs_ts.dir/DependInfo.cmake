
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_bs_vs_ts.cpp" "bench-build/CMakeFiles/bench_table5_bs_vs_ts.dir/bench_table5_bs_vs_ts.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table5_bs_vs_ts.dir/bench_table5_bs_vs_ts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/bs_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/bs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/locality/CMakeFiles/bs_locality.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/bs_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/bs_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/bs_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/bs_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
