file(REMOVE_RECURSE
  "../bench/bench_table1_workload"
  "../bench/bench_table1_workload.pdb"
  "CMakeFiles/bench_table1_workload.dir/bench_table1_workload.cpp.o"
  "CMakeFiles/bench_table1_workload.dir/bench_table1_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
