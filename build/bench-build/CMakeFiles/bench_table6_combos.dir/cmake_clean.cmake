file(REMOVE_RECURSE
  "../bench/bench_table6_combos"
  "../bench/bench_table6_combos.pdb"
  "CMakeFiles/bench_table6_combos.dir/bench_table6_combos.cpp.o"
  "CMakeFiles/bench_table6_combos.dir/bench_table6_combos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
