# Empty dependencies file for bench_table6_combos.
# This may be replaced when dependencies are built.
