# Empty compiler generated dependencies file for bs_regalloc.
# This may be replaced when dependencies are built.
