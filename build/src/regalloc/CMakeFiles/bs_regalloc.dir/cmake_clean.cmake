file(REMOVE_RECURSE
  "CMakeFiles/bs_regalloc.dir/LinearScan.cpp.o"
  "CMakeFiles/bs_regalloc.dir/LinearScan.cpp.o.d"
  "libbs_regalloc.a"
  "libbs_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
