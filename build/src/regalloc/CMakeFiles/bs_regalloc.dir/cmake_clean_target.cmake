file(REMOVE_RECURSE
  "libbs_regalloc.a"
)
