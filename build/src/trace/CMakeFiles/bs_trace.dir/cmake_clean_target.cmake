file(REMOVE_RECURSE
  "libbs_trace.a"
)
