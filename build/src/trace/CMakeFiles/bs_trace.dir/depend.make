# Empty dependencies file for bs_trace.
# This may be replaced when dependencies are built.
