file(REMOVE_RECURSE
  "CMakeFiles/bs_trace.dir/EstimateProfile.cpp.o"
  "CMakeFiles/bs_trace.dir/EstimateProfile.cpp.o.d"
  "CMakeFiles/bs_trace.dir/Trace.cpp.o"
  "CMakeFiles/bs_trace.dir/Trace.cpp.o.d"
  "libbs_trace.a"
  "libbs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
