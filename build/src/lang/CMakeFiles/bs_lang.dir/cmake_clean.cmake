file(REMOVE_RECURSE
  "CMakeFiles/bs_lang.dir/AST.cpp.o"
  "CMakeFiles/bs_lang.dir/AST.cpp.o.d"
  "CMakeFiles/bs_lang.dir/Eval.cpp.o"
  "CMakeFiles/bs_lang.dir/Eval.cpp.o.d"
  "CMakeFiles/bs_lang.dir/Generate.cpp.o"
  "CMakeFiles/bs_lang.dir/Generate.cpp.o.d"
  "CMakeFiles/bs_lang.dir/Parser.cpp.o"
  "CMakeFiles/bs_lang.dir/Parser.cpp.o.d"
  "libbs_lang.a"
  "libbs_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
