# Empty dependencies file for bs_lang.
# This may be replaced when dependencies are built.
