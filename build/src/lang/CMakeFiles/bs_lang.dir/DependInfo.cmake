
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/AST.cpp" "src/lang/CMakeFiles/bs_lang.dir/AST.cpp.o" "gcc" "src/lang/CMakeFiles/bs_lang.dir/AST.cpp.o.d"
  "/root/repo/src/lang/Eval.cpp" "src/lang/CMakeFiles/bs_lang.dir/Eval.cpp.o" "gcc" "src/lang/CMakeFiles/bs_lang.dir/Eval.cpp.o.d"
  "/root/repo/src/lang/Generate.cpp" "src/lang/CMakeFiles/bs_lang.dir/Generate.cpp.o" "gcc" "src/lang/CMakeFiles/bs_lang.dir/Generate.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/lang/CMakeFiles/bs_lang.dir/Parser.cpp.o" "gcc" "src/lang/CMakeFiles/bs_lang.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/bs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
