file(REMOVE_RECURSE
  "libbs_lang.a"
)
