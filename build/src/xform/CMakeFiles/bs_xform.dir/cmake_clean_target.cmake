file(REMOVE_RECURSE
  "libbs_xform.a"
)
