# Empty compiler generated dependencies file for bs_xform.
# This may be replaced when dependencies are built.
