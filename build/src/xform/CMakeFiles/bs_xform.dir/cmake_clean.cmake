file(REMOVE_RECURSE
  "CMakeFiles/bs_xform.dir/Unroll.cpp.o"
  "CMakeFiles/bs_xform.dir/Unroll.cpp.o.d"
  "libbs_xform.a"
  "libbs_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
