# Empty dependencies file for bs_driver.
# This may be replaced when dependencies are built.
