file(REMOVE_RECURSE
  "CMakeFiles/bs_driver.dir/Compiler.cpp.o"
  "CMakeFiles/bs_driver.dir/Compiler.cpp.o.d"
  "CMakeFiles/bs_driver.dir/Experiment.cpp.o"
  "CMakeFiles/bs_driver.dir/Experiment.cpp.o.d"
  "CMakeFiles/bs_driver.dir/Workloads.cpp.o"
  "CMakeFiles/bs_driver.dir/Workloads.cpp.o.d"
  "libbs_driver.a"
  "libbs_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
