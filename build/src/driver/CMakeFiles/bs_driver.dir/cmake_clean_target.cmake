file(REMOVE_RECURSE
  "libbs_driver.a"
)
