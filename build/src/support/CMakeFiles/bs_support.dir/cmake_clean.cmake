file(REMOVE_RECURSE
  "CMakeFiles/bs_support.dir/Str.cpp.o"
  "CMakeFiles/bs_support.dir/Str.cpp.o.d"
  "CMakeFiles/bs_support.dir/Table.cpp.o"
  "CMakeFiles/bs_support.dir/Table.cpp.o.d"
  "libbs_support.a"
  "libbs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
