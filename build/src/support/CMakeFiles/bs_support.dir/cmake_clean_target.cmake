file(REMOVE_RECURSE
  "libbs_support.a"
)
