# Empty dependencies file for bs_support.
# This may be replaced when dependencies are built.
