file(REMOVE_RECURSE
  "libbs_sim.a"
)
