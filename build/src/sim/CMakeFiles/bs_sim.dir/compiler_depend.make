# Empty compiler generated dependencies file for bs_sim.
# This may be replaced when dependencies are built.
