# Empty dependencies file for bs_sched.
# This may be replaced when dependencies are built.
