file(REMOVE_RECURSE
  "libbs_sched.a"
)
