file(REMOVE_RECURSE
  "CMakeFiles/bs_sched.dir/DepDAG.cpp.o"
  "CMakeFiles/bs_sched.dir/DepDAG.cpp.o.d"
  "CMakeFiles/bs_sched.dir/Schedule.cpp.o"
  "CMakeFiles/bs_sched.dir/Schedule.cpp.o.d"
  "libbs_sched.a"
  "libbs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
