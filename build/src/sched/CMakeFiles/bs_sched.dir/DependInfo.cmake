
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/DepDAG.cpp" "src/sched/CMakeFiles/bs_sched.dir/DepDAG.cpp.o" "gcc" "src/sched/CMakeFiles/bs_sched.dir/DepDAG.cpp.o.d"
  "/root/repo/src/sched/Schedule.cpp" "src/sched/CMakeFiles/bs_sched.dir/Schedule.cpp.o" "gcc" "src/sched/CMakeFiles/bs_sched.dir/Schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/bs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
