file(REMOVE_RECURSE
  "CMakeFiles/bs_locality.dir/Locality.cpp.o"
  "CMakeFiles/bs_locality.dir/Locality.cpp.o.d"
  "libbs_locality.a"
  "libbs_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
