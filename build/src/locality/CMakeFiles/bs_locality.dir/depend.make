# Empty dependencies file for bs_locality.
# This may be replaced when dependencies are built.
