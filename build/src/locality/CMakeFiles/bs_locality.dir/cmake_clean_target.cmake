file(REMOVE_RECURSE
  "libbs_locality.a"
)
