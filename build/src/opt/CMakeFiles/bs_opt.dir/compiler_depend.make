# Empty compiler generated dependencies file for bs_opt.
# This may be replaced when dependencies are built.
