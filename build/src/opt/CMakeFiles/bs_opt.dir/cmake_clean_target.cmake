file(REMOVE_RECURSE
  "libbs_opt.a"
)
