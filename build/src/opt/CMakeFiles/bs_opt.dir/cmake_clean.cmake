file(REMOVE_RECURSE
  "CMakeFiles/bs_opt.dir/Cleanup.cpp.o"
  "CMakeFiles/bs_opt.dir/Cleanup.cpp.o.d"
  "libbs_opt.a"
  "libbs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
