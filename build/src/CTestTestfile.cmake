# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("lang")
subdirs("lower")
subdirs("opt")
subdirs("sched")
subdirs("xform")
subdirs("locality")
subdirs("regalloc")
subdirs("sim")
subdirs("trace")
subdirs("driver")
