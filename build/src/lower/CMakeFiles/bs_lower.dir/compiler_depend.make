# Empty compiler generated dependencies file for bs_lower.
# This may be replaced when dependencies are built.
