file(REMOVE_RECURSE
  "CMakeFiles/bs_lower.dir/Lower.cpp.o"
  "CMakeFiles/bs_lower.dir/Lower.cpp.o.d"
  "libbs_lower.a"
  "libbs_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
