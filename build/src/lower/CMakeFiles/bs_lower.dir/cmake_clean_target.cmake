file(REMOVE_RECURSE
  "libbs_lower.a"
)
