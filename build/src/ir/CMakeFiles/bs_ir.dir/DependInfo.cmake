
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/CFG.cpp" "src/ir/CMakeFiles/bs_ir.dir/CFG.cpp.o" "gcc" "src/ir/CMakeFiles/bs_ir.dir/CFG.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/ir/CMakeFiles/bs_ir.dir/IR.cpp.o" "gcc" "src/ir/CMakeFiles/bs_ir.dir/IR.cpp.o.d"
  "/root/repo/src/ir/IRParser.cpp" "src/ir/CMakeFiles/bs_ir.dir/IRParser.cpp.o" "gcc" "src/ir/CMakeFiles/bs_ir.dir/IRParser.cpp.o.d"
  "/root/repo/src/ir/Interp.cpp" "src/ir/CMakeFiles/bs_ir.dir/Interp.cpp.o" "gcc" "src/ir/CMakeFiles/bs_ir.dir/Interp.cpp.o.d"
  "/root/repo/src/ir/Liveness.cpp" "src/ir/CMakeFiles/bs_ir.dir/Liveness.cpp.o" "gcc" "src/ir/CMakeFiles/bs_ir.dir/Liveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
