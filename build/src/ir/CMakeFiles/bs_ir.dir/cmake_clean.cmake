file(REMOVE_RECURSE
  "CMakeFiles/bs_ir.dir/CFG.cpp.o"
  "CMakeFiles/bs_ir.dir/CFG.cpp.o.d"
  "CMakeFiles/bs_ir.dir/IR.cpp.o"
  "CMakeFiles/bs_ir.dir/IR.cpp.o.d"
  "CMakeFiles/bs_ir.dir/IRParser.cpp.o"
  "CMakeFiles/bs_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/bs_ir.dir/Interp.cpp.o"
  "CMakeFiles/bs_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/bs_ir.dir/Liveness.cpp.o"
  "CMakeFiles/bs_ir.dir/Liveness.cpp.o.d"
  "libbs_ir.a"
  "libbs_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
