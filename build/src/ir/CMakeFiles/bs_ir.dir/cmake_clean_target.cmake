file(REMOVE_RECURSE
  "libbs_ir.a"
)
