# Empty compiler generated dependencies file for bs_ir.
# This may be replaced when dependencies are built.
