//===- bench/BenchCommon.h - Shared helpers for the table benches -*- C++ -*-===//
///
/// \file
/// Helpers shared by the table-regenerating bench binaries: configuration
/// constructors, the per-benchmark run loop with failure reporting, and
/// printf-free table emission.
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_BENCH_BENCHCOMMON_H
#define BALSCHED_BENCH_BENCHCOMMON_H

#include "driver/Experiment.h"
#include "support/Str.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>

namespace bsched {
namespace bench {

inline driver::CompileOptions
makeOptions(sched::SchedulerKind Kind, int Unroll = 1, bool TrS = false,
            bool LA = false) {
  driver::CompileOptions O;
  O.Scheduler = Kind;
  O.UnrollFactor = Unroll;
  O.TraceScheduling = TrS;
  O.LocalityAnalysis = LA;
  // Benches time the pipeline; the static verifier runs in tests/fuzzing.
  O.VerifyPasses = false;
  return O;
}

inline driver::CompileOptions balanced(int Unroll = 1, bool TrS = false,
                                       bool LA = false) {
  return makeOptions(sched::SchedulerKind::Balanced, Unroll, TrS, LA);
}

inline driver::CompileOptions traditional(int Unroll = 1, bool TrS = false,
                                          bool LA = false) {
  return makeOptions(sched::SchedulerKind::Traditional, Unroll, TrS, LA);
}

/// Runs (cached) and aborts the bench with a diagnostic on any failure —
/// a table must never be printed from a failed or miscompiled run.
inline const driver::RunResult &
mustRun(const driver::Workload &W, const driver::CompileOptions &Opts,
        const sim::MachineConfig &Machine = {}) {
  const driver::RunResult &R = driver::runCached(W, Opts, Machine);
  if (!R.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return R;
}

/// The full (workload x options x machine) grid as an ExperimentJob list —
/// the shape every table's jobs() registration is built from.
inline std::vector<driver::ExperimentJob>
gridJobs(const std::vector<driver::CompileOptions> &Configs,
         const std::vector<sim::MachineConfig> &Machines = {
             sim::MachineConfig{}}) {
  std::vector<driver::ExperimentJob> Jobs;
  Jobs.reserve(driver::workloads().size() * Configs.size() * Machines.size());
  for (const driver::Workload &W : driver::workloads())
    for (const driver::CompileOptions &O : Configs)
      for (const sim::MachineConfig &M : Machines)
        Jobs.push_back({&W, O, M});
  return Jobs;
}

/// Pre-computes every (workload, options, machine) combination on the shared
/// thread pool so the serial table-assembly loops below hit the runCached
/// memo instead of compiling and simulating one cell at a time. Results are
/// identical for any thread count (runAll's determinism contract), so the
/// emitted tables are byte-for-byte what the serial loops produced.
inline void warm(const std::vector<driver::CompileOptions> &Configs,
                 const std::vector<sim::MachineConfig> &Machines = {
                     sim::MachineConfig{}}) {
  driver::runAll(gridJobs(Configs, Machines));
}

inline void emit(const Table &T) {
  std::fputs(T.render().c_str(), stdout);
  std::fputs("\n", stdout);
}

inline void heading(const char *Text) {
  std::printf("%s\n", Text);
  for (const char *C = Text; *C; ++C)
    std::fputc('=', stdout);
  std::fputs("\n\n", stdout);
}

} // namespace bench
} // namespace bsched

#endif // BALSCHED_BENCH_BENCHCOMMON_H
