//===- bench/bench_table8_summary.cpp - Table 8 -----------------------------===//
//
// Regenerates Table 8: the summary comparison of balanced and traditional
// scheduling per optimization level — BS-over-TS speedup, percentage
// decrease in load interlock cycles relative to TS, program speedup over
// unoptimized BS, interlock decrease over unoptimized BS, and remaining
// load-interlock share of total cycles for both schedulers.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

struct Level {
  const char *Name;
  int LU;
  bool TrS;
};
constexpr Level Levels[] = {
    {"No optimizations", 1, false},
    {"Loop unrolling by 4", 4, false},
    {"Loop unrolling by 8", 8, false},
    {"Trace scheduling with loop unrolling by 4", 4, true},
    {"Trace scheduling with loop unrolling by 8", 8, true},
};

std::vector<ExperimentJob> jobs() {
  std::vector<driver::CompileOptions> Configs{balanced()};
  for (const Level &L : Levels) {
    Configs.push_back(balanced(L.LU, L.TrS));
    Configs.push_back(traditional(L.LU, L.TrS));
  }
  return gridJobs(Configs);
}

int run() {
  heading("Table 8: Summary comparison of balanced and traditional "
          "scheduling");

  Table T({"Optimization (plus scheduling)", "BS vs TS speedup",
           "Ld-int dec. vs TS", "Speedup vs plain BS", "Ld-int dec. vs "
           "plain BS", "li% of cycles (BS)", "li% of cycles (TS)"});

  for (const Level &L : Levels) {
    std::vector<double> SpVsTS, RedVsTS, SpVsBase, RedVsBase, LiBS, LiTS;
    for (const Workload &W : workloads()) {
      const RunResult &Base = mustRun(W, balanced());
      const RunResult &BS = mustRun(W, balanced(L.LU, L.TrS));
      const RunResult &TS = mustRun(W, traditional(L.LU, L.TrS));
      SpVsTS.push_back(speedup(TS, BS));
      if (TS.Sim.LoadInterlockCycles != 0)
        RedVsTS.push_back(pctDecrease(TS.Sim.LoadInterlockCycles,
                                      BS.Sim.LoadInterlockCycles));
      SpVsBase.push_back(speedup(Base, BS));
      if (Base.Sim.LoadInterlockCycles != 0)
        RedVsBase.push_back(pctDecrease(Base.Sim.LoadInterlockCycles,
                                        BS.Sim.LoadInterlockCycles));
      LiBS.push_back(BS.Sim.loadInterlockShare());
      LiTS.push_back(TS.Sim.loadInterlockShare());
    }
    bool IsBase = L.LU == 1 && !L.TrS;
    T.addRow({L.Name, fmtDouble(mean(SpVsTS)), fmtPercent(mean(RedVsTS), 0),
              IsBase ? "n.a." : fmtDouble(mean(SpVsBase)),
              IsBase ? "n.a." : fmtPercent(mean(RedVsBase), 0),
              fmtPercent(mean(LiBS), 0), fmtPercent(mean(LiTS), 0)});
  }
  emit(T);

  std::printf(
      "Paper reference (Table 8): BS-vs-TS 1.05/1.12/1.18/1.14/1.16; "
      "ld-interlock decrease vs TS 51/61/62/65/56%%; program speedups "
      "n.a./1.19/1.28/1.19/1.26; BS li%% 7/6/6/5/5, TS li%% "
      "15/16/16/15/15.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table8_summary,
                   "Table 8: summary comparison of balanced and traditional "
                   "scheduling")
