//===- bench/bench_table1_workload.cpp - Table 1: the workload -------------===//
//
// Regenerates Table 1: the workload description, plus the analogue column
// documenting what each synthetic kernel is engineered to do and its basic
// dynamic statistics on the unoptimized balanced configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

std::vector<ExperimentJob> jobs() { return gridJobs({balanced()}); }

int run() {
  heading("Table 1: The workload (synthetic analogues of Perfect Club / "
          "SPEC92 programs)");

  Table T({"Program", "Lang.", "Description (original)",
           "Analogue behaviour", "Dyn. instrs (M)"});
  for (const Workload &W : workloads()) {
    const RunResult &R = mustRun(W, balanced());
    T.addRow({W.Name, W.Language, W.Description, W.Behaviour,
              fmtMillions(R.Sim.Counts.total(), 2)});
  }
  emit(T);
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table1_workload,
                   "Table 1: the workload and its dynamic statistics")
