//===- bench/bench_profile_estimator.cpp - Estimated vs interpreted profiles -===//
//
// Measures what the static profile estimator (trace/EstimateProfile) buys
// and costs against the interpreter ground truth, per workload and
// trace-scheduling configuration:
//
//   * cold-start profile latency: estimateProfile vs a profiling
//     interpretation of the same lowered module (the compile-time win);
//   * schedule-hash agreement: does the estimated profile pick the exact
//     same pre-regalloc schedule as the interpreted one;
//   * simulated cycles delta: end-to-end cost of estimator-guided traces;
//   * weighted branch-direction error: fraction of dynamically-executed
//     two-way branches (weighted by interpreted execution count) whose
//     hotter successor the estimator gets wrong.
//
// Emits machine-readable BENCH_profile.json.
//
// Usage:
//   bench_profile_estimator [--quick] [--json PATH]
//                           [--max-cycle-regress PCT] [--min-speedup X]
//
//   --quick              one configuration (BS+LU4+TrS), the CI mode.
//   --json PATH          where to write BENCH_profile.json (default: cwd).
//   --max-cycle-regress  exit 1 if any configuration's overall simulated
//                        cycle regression exceeds PCT percent.
//   --min-speedup        exit 1 if any configuration's overall profile-time
//                        speedup (interp ns / est ns) falls below X.
//
//===----------------------------------------------------------------------===//

#include "driver/Experiment.h"
#include "driver/Workloads.h"
#include "ir/Interp.h"
#include "lang/Parser.h"
#include "locality/Locality.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "support/Str.h"
#include "trace/EstimateProfile.h"
#include "xform/Unroll.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-N wall time of \p Fn in nanoseconds (min absorbs scheduler noise;
/// the estimator runs in microseconds, so take more reps for it).
template <typename FnT> uint64_t bestOf(int Reps, FnT Fn) {
  uint64_t Best = ~0ull;
  for (int R = 0; R != Reps; ++R) {
    uint64_t T0 = nowNs();
    Fn();
    uint64_t T = nowNs() - T0;
    Best = std::min(Best, T);
  }
  return Best;
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Rebuilds the module the trace scheduler profiles under \p Opts: the same
/// locality / unroll / lower / cleanup front half the pipeline runs before
/// it consults a profile.
ir::Module profiledModule(const lang::Program &P, const CompileOptions &Opts) {
  lang::Program Copy = P;
  if (Opts.LocalityAnalysis) {
    locality::LocalityOptions LOpts;
    LOpts.UnrollFactor = Opts.UnrollFactor > 1 ? Opts.UnrollFactor : 0;
    locality::applyLocality(Copy, LOpts);
  }
  if (Opts.UnrollFactor > 1)
    xform::unrollLoops(Copy, Opts.UnrollFactor);
  if (Opts.LocalityAnalysis || Opts.UnrollFactor > 1) {
    if (std::string E = lang::checkProgram(Copy); !E.empty()) {
      std::fprintf(stderr, "FATAL: recheck [%s]: %s\n", Opts.tag().c_str(),
                   E.c_str());
      std::exit(1);
    }
  }
  lower::LowerResult LR = lower::lowerProgram(Copy, Opts.Lower);
  if (!LR.ok()) {
    std::fprintf(stderr, "FATAL: lower [%s]: %s\n", Opts.tag().c_str(),
                 LR.Error.c_str());
    std::exit(1);
  }
  if (Opts.CleanupIR)
    opt::cleanupModule(LR.M);
  return std::move(LR.M);
}

/// Hash of the pre-regalloc schedule \p Opts (with the given profile source)
/// produces — the bytes golden_schedule_test pins.
uint64_t scheduleHash(const lang::Program &P, CompileOptions Opts,
                      bool Estimated) {
  Opts.UseEstimatedProfile = Estimated;
  Opts.StopBeforeRegAlloc = true;
  Opts.VerifyPasses = false;
  CompileResult C = compileProgram(P, Opts);
  if (!C.ok()) {
    std::fprintf(stderr, "FATAL: compile [%s]: %s\n", Opts.tag().c_str(),
                 C.Error.c_str());
    std::exit(1);
  }
  return fnv1a(ir::printFunction(C.M.Fn));
}

struct Row {
  std::string Name;
  uint64_t EstNs = 0, InterpNs = 0;
  bool HashAgree = false;
  uint64_t CyclesEst = 0, CyclesInterp = 0;
  double MispredictPct = 0; ///< weighted wrong-hot-successor rate.

  double speedup() const {
    return EstNs ? static_cast<double>(InterpNs) / EstNs : 0.0;
  }
  double cycleDeltaPct() const {
    return CyclesInterp ? 100.0 *
                              (static_cast<double>(CyclesEst) -
                               static_cast<double>(CyclesInterp)) /
                              static_cast<double>(CyclesInterp)
                        : 0.0;
  }
};

struct ConfigResult {
  CompileOptions Opts;
  std::vector<Row> Rows;
  uint64_t EstNs = 0, InterpNs = 0, CyclesEst = 0, CyclesInterp = 0;
  unsigned Agreed = 0;

  double speedup() const {
    return EstNs ? static_cast<double>(InterpNs) / EstNs : 0.0;
  }
  double cycleDeltaPct() const {
    return CyclesInterp ? 100.0 *
                              (static_cast<double>(CyclesEst) -
                               static_cast<double>(CyclesInterp)) /
                              static_cast<double>(CyclesInterp)
                        : 0.0;
  }
};

/// Weighted branch-direction error of \p Est against \p Truth on \p F: over
/// two-successor blocks the interpreter actually reached, the fraction of
/// executions whose estimated-hotter slot differs from the interpreted one.
double mispredictPct(const ir::Function &F, const ir::InterpResult &Est,
                     const ir::InterpResult &Truth) {
  uint64_t Total = 0, Wrong = 0;
  for (const ir::BasicBlock &B : F.Blocks) {
    if (B.successors().size() != 2 || Truth.BlockCounts[B.Id] == 0)
      continue;
    Total += Truth.BlockCounts[B.Id];
    int TruthHot = Truth.EdgeCounts[B.Id][1] > Truth.EdgeCounts[B.Id][0];
    int EstHot = Est.EdgeCounts[B.Id][1] > Est.EdgeCounts[B.Id][0];
    if (TruthHot != EstHot)
      Wrong += Truth.BlockCounts[B.Id];
  }
  return Total ? 100.0 * static_cast<double>(Wrong) /
                     static_cast<double>(Total)
               : 0.0;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath = "BENCH_profile.json";
  double MaxCycleRegress = -1.0;
  double MinSpeedup = -1.0;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 != argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--max-cycle-regress") && I + 1 != argc)
      MaxCycleRegress = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--min-speedup") && I + 1 != argc)
      MinSpeedup = std::atof(argv[++I]);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[I]);
      return 2;
    }
  }

  std::vector<CompileOptions> Configs;
  {
    CompileOptions Base;
    Base.TraceScheduling = true;
    Base.VerifyPasses = false; // timing/measuring; tests verify.
    CompileOptions C = Base;
    C.Scheduler = sched::SchedulerKind::Balanced;
    C.UnrollFactor = 4;
    Configs.push_back(C);
    if (!Quick) {
      C.UnrollFactor = 8;
      Configs.push_back(C);
      C.Scheduler = sched::SchedulerKind::Traditional;
      C.UnrollFactor = 4;
      Configs.push_back(C);
    }
  }

  std::printf("profile estimator vs interpreter (%s mode, %zu configs)\n",
              Quick ? "quick" : "full", Configs.size());

  std::vector<ConfigResult> Results;
  for (const CompileOptions &Opts : Configs) {
    ConfigResult CR;
    CR.Opts = Opts;
    for (const Workload &W : workloads()) {
      lang::Program P = parseWorkload(W);
      ir::Module M = profiledModule(P, Opts);

      Row R;
      R.Name = W.Name;
      ir::InterpResult Est, Truth;
      R.EstNs = bestOf(9, [&] { Est = trace::estimateProfile(M.Fn); });
      R.InterpNs = bestOf(3, [&] { Truth = ir::interpret(M); });
      R.MispredictPct = mispredictPct(M.Fn, Est, Truth);
      R.HashAgree = scheduleHash(P, Opts, /*Estimated=*/false) ==
                    scheduleHash(P, Opts, /*Estimated=*/true);

      CompileOptions RunInterp = Opts;
      CompileOptions RunEst = Opts;
      RunEst.UseEstimatedProfile = true;
      RunResult RI = runWorkload(W, RunInterp);
      RunResult RE = runWorkload(W, RunEst);
      if (!RI.ok() || !RE.ok()) {
        std::fprintf(stderr, "FATAL: run %s [%s]: %s\n", W.Name,
                     Opts.tag().c_str(),
                     (!RI.ok() ? RI.Error : RE.Error).c_str());
        return 1;
      }
      R.CyclesInterp = RI.Sim.Cycles;
      R.CyclesEst = RE.Sim.Cycles;

      CR.EstNs += R.EstNs;
      CR.InterpNs += R.InterpNs;
      CR.CyclesEst += R.CyclesEst;
      CR.CyclesInterp += R.CyclesInterp;
      CR.Agreed += R.HashAgree;
      CR.Rows.push_back(std::move(R));
    }
    std::printf("  %-14s profile %8.1f us -> %6.1f us (%.0fx)  "
                "hash agree %u/%zu  cycles %+.2f%%\n",
                Opts.tag().c_str(), CR.InterpNs / 1e3, CR.EstNs / 1e3,
                CR.speedup(), CR.Agreed, CR.Rows.size(), CR.cycleDeltaPct());
    Results.push_back(std::move(CR));
  }

  // --- JSON -----------------------------------------------------------------
  {
    std::ostringstream J;
    J << "{\n  \"schema\": \"bsched-profile-estimator-v1\",\n";
    J << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
    J << "  \"entry_units\": " << trace::EstimateEntryCount << ",\n";
    J << "  \"configs\": [\n";
    for (size_t CI = 0; CI != Results.size(); ++CI) {
      const ConfigResult &CR = Results[CI];
      J << "    {\"config\": \"" << CR.Opts.tag() << "\",\n"
        << "     \"workloads\": [\n";
      for (size_t WI = 0; WI != CR.Rows.size(); ++WI) {
        const Row &R = CR.Rows[WI];
        J << "      {\"name\": \"" << R.Name << "\", \"est_ns\": " << R.EstNs
          << ", \"interp_ns\": " << R.InterpNs
          << ", \"speedup\": " << fmtDouble(R.speedup(), 1)
          << ", \"sched_hash_agree\": " << (R.HashAgree ? "true" : "false")
          << ", \"cycles_est\": " << R.CyclesEst
          << ", \"cycles_interp\": " << R.CyclesInterp
          << ", \"cycle_delta_pct\": " << fmtDouble(R.cycleDeltaPct(), 2)
          << ", \"mispredict_pct\": " << fmtDouble(R.MispredictPct, 2) << "}"
          << (WI + 1 == CR.Rows.size() ? "\n" : ",\n");
      }
      J << "     ],\n     \"summary\": {\"est_ns\": " << CR.EstNs
        << ", \"interp_ns\": " << CR.InterpNs
        << ", \"speedup\": " << fmtDouble(CR.speedup(), 1)
        << ", \"agree\": " << CR.Agreed << ", \"of\": " << CR.Rows.size()
        << ", \"cycle_delta_pct\": " << fmtDouble(CR.cycleDeltaPct(), 2)
        << "}}" << (CI + 1 == Results.size() ? "\n" : ",\n");
    }
    J << "  ]\n}\n";
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Out << J.str();
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  int Exit = 0;
  for (const ConfigResult &CR : Results) {
    if (MaxCycleRegress >= 0.0 && CR.cycleDeltaPct() > MaxCycleRegress) {
      std::fprintf(stderr,
                   "FAIL: [%s] cycle regression %.2f%% over the %.2f%% cap\n",
                   CR.Opts.tag().c_str(), CR.cycleDeltaPct(), MaxCycleRegress);
      Exit = 1;
    }
    if (MinSpeedup >= 0.0 && CR.speedup() < MinSpeedup) {
      std::fprintf(stderr,
                   "FAIL: [%s] profile speedup %.1fx under the %.1fx floor\n",
                   CR.Opts.tag().c_str(), CR.speedup(), MinSpeedup);
      Exit = 1;
    }
  }
  return Exit;
}
