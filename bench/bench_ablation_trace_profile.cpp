//===- bench/bench_ablation_trace_profile.cpp - Trace-guidance ablation ----===//
//
// Section 3.2 permits trace selection "guided by estimated or profiled
// execution frequencies"; the paper's methodology profiles first
// (section 4.2). This ablation quantifies that choice: trace scheduling with
// real profiles versus the static structural estimator (loop depth x10 per
// level, back edges favored), plus the cost of unguarded speculation when
// the guidance is wrong.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

CompileOptions profCfg() { return balanced(4, /*TrS=*/true); }
CompileOptions estCfg() {
  CompileOptions O = profCfg();
  O.UseEstimatedProfile = true;
  return O;
}

std::vector<ExperimentJob> jobs() {
  return gridJobs({balanced(4), profCfg(), estCfg()});
}

int run() {
  heading("Ablation: trace selection guided by profiles vs static "
          "estimation (balanced scheduling, trace scheduling + LU4)");

  CompileOptions ProfCfg = profCfg();
  CompileOptions EstCfg = estCfg();

  Table T({"Benchmark", "No TrS (cycles M)", "TrS, profiled", "TrS, estimated",
           "Est/Prof cycle ratio", "Comp instrs prof/est"});
  std::vector<double> ProfSp, EstSp, Ratio;
  for (const Workload &W : workloads()) {
    const RunResult &Base = mustRun(W, balanced(4));
    const RunResult &RP = mustRun(W, ProfCfg);
    const RunResult &RE = mustRun(W, EstCfg);
    double SP = speedup(Base, RP), SE = speedup(Base, RE);
    ProfSp.push_back(SP);
    EstSp.push_back(SE);
    double Rt = static_cast<double>(RE.Sim.Cycles) /
                static_cast<double>(RP.Sim.Cycles);
    Ratio.push_back(Rt);
    T.addRow({W.Name, fmtMillions(Base.Sim.Cycles, 2), fmtDouble(SP),
              fmtDouble(SE), fmtDouble(Rt, 3),
              std::to_string(RP.Trace.CompensationInstrs) + " / " +
                  std::to_string(RE.Trace.CompensationInstrs)});
  }
  T.addSeparator();
  T.addRow({"AVERAGE", "", fmtDouble(mean(ProfSp)), fmtDouble(mean(EstSp)),
            fmtDouble(mean(Ratio), 3)});
  emit(T);

  std::printf(
      "Static estimation cannot see data-dependent branch bias (DYFESM) but "
      "captures loop structure, which dominates this workload; the\n"
      "speculation and join-compensation profitability gates keep wrong "
      "guesses from inflating the dynamic instruction count (the paper's "
      "DYFESM footnote describes exactly that failure mode).\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(ablation_trace_profile,
                   "Ablation: trace selection guided by profiles vs static "
                   "estimation")
