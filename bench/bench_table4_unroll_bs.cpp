//===- bench/bench_table4_unroll_bs.cpp - Table 4 ---------------------------===//
//
// Regenerates Table 4: balanced scheduling with loop unrolling — total-cycle
// speedup, dynamic-instruction-count decrease and load-interlock-cycle
// decrease at unrolling factors 4 and 8, relative to no unrolling.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

std::vector<ExperimentJob> jobs() {
  return gridJobs({balanced(1), balanced(4), balanced(8)});
}

int run() {
  heading("Table 4: Balanced scheduling — speedup in total cycles and "
          "percentage decrease in dynamic instruction count and load "
          "interlock cycles for unrolling factors of 4 and 8, relative to "
          "no unrolling");

  Table T({"Benchmark", "Cycles (M), no LU", "Speedup x4", "Speedup x8",
           "Instrs (M), no LU", "Instr dec. x4", "Instr dec. x8",
           "Ld-interlock (M)", "Interlock dec. x4", "Interlock dec. x8"});

  std::vector<double> Sp4, Sp8, Id4, Id8, Ld4, Ld8;
  for (const Workload &W : workloads()) {
    const RunResult &R0 = mustRun(W, balanced(1));
    const RunResult &R4 = mustRun(W, balanced(4));
    const RunResult &R8 = mustRun(W, balanced(8));

    double S4 = speedup(R0, R4), S8 = speedup(R0, R8);
    double I4 = pctDecrease(R0.Sim.Counts.total(), R4.Sim.Counts.total());
    double I8 = pctDecrease(R0.Sim.Counts.total(), R8.Sim.Counts.total());
    bool HasLoads = R0.Sim.LoadInterlockCycles != 0;
    double L4 = pctDecrease(R0.Sim.LoadInterlockCycles,
                            R4.Sim.LoadInterlockCycles);
    double L8 = pctDecrease(R0.Sim.LoadInterlockCycles,
                            R8.Sim.LoadInterlockCycles);
    Sp4.push_back(S4);
    Sp8.push_back(S8);
    Id4.push_back(I4);
    Id8.push_back(I8);
    if (HasLoads) {
      Ld4.push_back(L4);
      Ld8.push_back(L8);
    }
    T.addRow({W.Name, fmtMillions(R0.Sim.Cycles, 2), fmtDouble(S4),
              fmtDouble(S8), fmtMillions(R0.Sim.Counts.total(), 2),
              fmtPercent(I4), fmtPercent(I8),
              fmtMillions(R0.Sim.LoadInterlockCycles, 2),
              HasLoads ? fmtPercent(L4) : "----",
              HasLoads ? fmtPercent(L8) : "----"});
  }
  T.addSeparator();
  T.addRow({"AVERAGE", "", fmtDouble(mean(Sp4)), fmtDouble(mean(Sp8)), "",
            fmtPercent(mean(Id4)), fmtPercent(mean(Id8)), "",
            fmtPercent(mean(Ld4)), fmtPercent(mean(Ld8))});
  emit(T);

  std::printf("Paper reference (Table 4 averages): speedup 1.19 (x4) / 1.28 "
              "(x8); instr decrease 10.9%% / 14.0%%; load-interlock decrease "
              "23.3%% / 26.1%%.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table4_unroll_bs,
                   "Table 4: balanced scheduling with loop unrolling")
