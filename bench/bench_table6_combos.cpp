//===- bench/bench_table6_combos.cpp - Table 6 ------------------------------===//
//
// Regenerates Table 6: speedups over balanced scheduling alone for every
// optimization combination — loop unrolling by 4 and 8, trace scheduling
// (alone and with unrolling), and locality analysis (alone, with unrolling,
// and with both).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

struct Combo {
  const char *Name;
  int LU;
  bool TrS, LA;
};
constexpr Combo Combos[] = {
    {"LU4", 4, false, false},       {"LU8", 8, false, false},
    {"TrS", 1, true, false},        {"TrS+LU4", 4, true, false},
    {"TrS+LU8", 8, true, false},    {"LA", 1, false, true},
    {"LA+LU4", 4, false, true},     {"LA+LU8", 8, false, true},
    {"LA+TrS+LU4", 4, true, true},  {"LA+TrS+LU8", 8, true, true},
};
constexpr int NumCombos = 10;

std::vector<ExperimentJob> jobs() {
  std::vector<driver::CompileOptions> Configs{balanced()};
  for (const Combo &C : Combos)
    Configs.push_back(balanced(C.LU, C.TrS, C.LA));
  return gridJobs(Configs);
}

int run() {
  heading("Table 6: Speedups over balanced scheduling alone for "
          "combinations of loop unrolling (LU 4 / LU 8), trace scheduling "
          "(TrS) and locality analysis (LA)");

  std::vector<std::string> Header{"Benchmark"};
  for (const Combo &C : Combos)
    Header.push_back(C.Name);
  Table T(Header);

  std::vector<double> Acc[NumCombos];
  for (const Workload &W : workloads()) {
    const RunResult &Base = mustRun(W, balanced());
    std::vector<std::string> Row{W.Name};
    for (int K = 0; K != NumCombos; ++K) {
      const RunResult &R =
          mustRun(W, balanced(Combos[K].LU, Combos[K].TrS, Combos[K].LA));
      double S = speedup(Base, R);
      Acc[K].push_back(S);
      Row.push_back(fmtDouble(S));
    }
    T.addRow(Row);
  }
  T.addSeparator();
  std::vector<std::string> Avg{"AVERAGE"};
  for (int K = 0; K != NumCombos; ++K)
    Avg.push_back(fmtDouble(mean(Acc[K])));
  T.addRow(Avg);
  emit(T);

  std::printf(
      "Paper reference (Table 6 averages over BS alone): LU4 1.19, LU8 "
      "1.28, TrS ~1.0, TrS+LU4 1.19, TrS+LU8 1.26, LA 1.15, LA+LU4 1.28, "
      "LA+LU8 1.31, LA+TrS+LU4 1.29, LA+TrS+LU8 1.40.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table6_combos,
                   "Table 6: speedups over plain BS for every optimization "
                   "combination")
