//===- bench/Suite.h - Unified suite-runner table registry ------*- C++ -*-===//
///
/// \file
/// The contract between the table benches and the bsched-suite orchestrator.
/// Each table bench is a pair of functions instead of a main():
///
///   - jobs(): the (workload, options, machine) grid of every runCached cell
///     the table reads — the part worth deduplicating and parallelizing;
///   - run():  emits the table to stdout, assuming nothing (every cell it
///     touches still goes through runCached, so it is correct — just slower
///     — without a warm cache).
///
/// BSCHED_SUITE_TABLE(name, title) glues them in: it exports the table
/// descriptor under a well-known symbol for the suite binary and, unless the
/// translation unit is being compiled into the suite (BSCHED_SUITE_BUILD),
/// defines the standalone main() — pre-run the grid on the pool, then emit.
/// One source file therefore builds both the historical per-table binary and
/// the suite member, and the two produce byte-identical output: run() is the
/// single emitter, and runCached results are deterministic for any thread
/// count and either cache tier (the suite_test and the suite's
/// --verify-standalone mode both assert the bytes).
///
//===----------------------------------------------------------------------===//

#ifndef BALSCHED_BENCH_SUITE_H
#define BALSCHED_BENCH_SUITE_H

#include "driver/Experiment.h"

#include <string>
#include <vector>

namespace bsched {
namespace bench {

/// One registered table bench.
struct SuiteTable {
  std::string Name;  ///< matches the standalone binary: bench_<Name>.
  std::string Title; ///< one-line description for --list and the JSON.
  std::vector<driver::ExperimentJob> (*Jobs)();
  int (*Run)();
};

/// Standalone-binary behaviour: pre-run the grid on the shared pool (the old
/// inline bench::warm call), then emit. Exposed so the per-table main()s
/// stay one line.
int runTableStandalone(const SuiteTable &T);

/// Runs \p Fn with stdout redirected into \p Captured (fd-level, so C stdio
/// from the table code is included). Returns Fn's return value; on capture
/// plumbing failure returns nonzero with \p Captured empty. stdout is
/// restored before returning.
int captureStdout(int (*Fn)(), std::string &Captured);

/// Every suite table, in canonical (paper) order. Each X(name) names a
/// translation unit that invokes BSCHED_SUITE_TABLE(name, ...); the suite
/// binary expands this list to declare and collect the descriptors, so a
/// new table registers by adding one line here and one macro call there.
#define BSCHED_SUITE_ALL_TABLES(X)                                            \
  X(table1_workload)                                                          \
  X(table2_memory)                                                            \
  X(table3_latency)                                                           \
  X(table4_unroll_bs)                                                         \
  X(table5_bs_vs_ts)                                                          \
  X(table6_combos)                                                            \
  X(table7_trace_bs_vs_ts)                                                    \
  X(table8_summary)                                                           \
  X(table9_locality)                                                          \
  X(sec55_model_compare)                                                      \
  X(ablation_weight_cap)                                                      \
  X(ablation_trace_profile)                                                   \
  X(extra_hitrate_sweep)                                                      \
  X(extra_breakdown)                                                          \
  X(ext_future_work)

} // namespace bench
} // namespace bsched

/// Defined by each table translation unit (via BSCHED_SUITE_TABLE); the
/// suite binary declares them through BSCHED_SUITE_ALL_TABLES.
#define BSCHED_SUITE_DECLARE(NAME)                                            \
  ::bsched::bench::SuiteTable bsched_suite_table_##NAME();

#ifdef BSCHED_SUITE_BUILD
#define BSCHED_SUITE_MAIN_IMPL(NAME)
#else
#define BSCHED_SUITE_MAIN_IMPL(NAME)                                          \
  int main() {                                                                \
    return ::bsched::bench::runTableStandalone(                               \
        bsched_suite_table_##NAME());                                         \
  }
#endif

/// Registers the enclosing file's jobs()/run() pair (any file-scope callables
/// with those signatures) as suite table \p NAME, and emits the standalone
/// main() when not building the suite.
#define BSCHED_SUITE_TABLE(NAME, TITLE)                                       \
  ::bsched::bench::SuiteTable bsched_suite_table_##NAME() {                   \
    return {#NAME, TITLE, &jobs, &run};                                       \
  }                                                                           \
  BSCHED_SUITE_MAIN_IMPL(NAME)

#endif // BALSCHED_BENCH_SUITE_H
