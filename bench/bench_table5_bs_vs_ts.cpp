//===- bench/bench_table5_bs_vs_ts.cpp - Table 5 ----------------------------===//
//
// Regenerates Table 5: balanced vs traditional scheduling under loop
// unrolling — total-cycle speedup of BS over TS, percentage reduction in
// load interlock cycles, and load interlocks as a share of total cycles,
// at unrolling factors 0 (none), 4 and 8.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

std::vector<ExperimentJob> jobs() {
  return gridJobs({balanced(1), balanced(4), balanced(8), traditional(1),
                   traditional(4), traditional(8)});
}

int run() {
  heading("Table 5: Balanced scheduling (BS) vs traditional scheduling (TS) "
          "for loop unrolling: total-cycle speedup, percentage improvement "
          "in load interlock cycles, and load interlock cycles as a "
          "percentage of total cycles");

  Table T({"Benchmark", "BSvTS noLU", "BSvTS LU4", "BSvTS LU8",
           "Ld-int red. noLU", "red. LU4", "red. LU8", "li% BS/TS noLU",
           "li% BS/TS LU4", "li% BS/TS LU8"});

  std::vector<double> Sp[3], Red[3], LiBS[3], LiTS[3];
  for (const Workload &W : workloads()) {
    std::vector<std::string> Row{W.Name};
    const int Factors[3] = {1, 4, 8};
    const RunResult *BS[3], *TS[3];
    for (int K = 0; K != 3; ++K) {
      BS[K] = &mustRun(W, balanced(Factors[K]));
      TS[K] = &mustRun(W, traditional(Factors[K]));
    }
    for (int K = 0; K != 3; ++K) {
      double S = speedup(*TS[K], *BS[K]);
      Sp[K].push_back(S);
      Row.push_back(fmtDouble(S));
    }
    for (int K = 0; K != 3; ++K) {
      if (TS[K]->Sim.LoadInterlockCycles == 0) {
        Row.push_back("-----");
        continue;
      }
      double R = pctDecrease(TS[K]->Sim.LoadInterlockCycles,
                             BS[K]->Sim.LoadInterlockCycles);
      Red[K].push_back(R);
      Row.push_back(fmtPercent(R));
    }
    for (int K = 0; K != 3; ++K) {
      double B = BS[K]->Sim.loadInterlockShare();
      double S = TS[K]->Sim.loadInterlockShare();
      LiBS[K].push_back(B);
      LiTS[K].push_back(S);
      Row.push_back(fmtPercent(B) + " / " + fmtPercent(S));
    }
    T.addRow(Row);
  }
  T.addSeparator();
  std::vector<std::string> Avg{"AVERAGE"};
  for (int K = 0; K != 3; ++K)
    Avg.push_back(fmtDouble(mean(Sp[K])));
  for (int K = 0; K != 3; ++K)
    Avg.push_back(fmtPercent(mean(Red[K])));
  for (int K = 0; K != 3; ++K)
    Avg.push_back(fmtPercent(mean(LiBS[K])) + " / " +
                  fmtPercent(mean(LiTS[K])));
  T.addRow(Avg);
  emit(T);

  std::printf(
      "Paper reference (Table 5 averages): BS vs TS 1.05 / 1.12 / 1.18; "
      "load-interlock reduction 51.3%% / 61.0%% / 62.1%%; load-interlock "
      "share BS 7.0/6.4/5.8%%, TS 14.8/15.5/16.0%%.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table5_bs_vs_ts,
                   "Table 5: balanced vs traditional scheduling under "
                   "loop unrolling")
