//===- bench/bench_sim_throughput.cpp - Simulator-throughput tracker --------===//
//
// Times the hot simulation path: every workload compiled once at the
// heaviest evaluation configuration (BS+LU8+TrS), then simulated under the
// machine models the experiments use, against both the predecoded fast core
// and the preserved reference core (sim::SimImpl::Reference). The per-phase
// breakdown is differential — each model switches one more subsystem on:
//
//   decode    cost of predecoding alone        (MaxCycles = 0)
//   pipeline  issue/scoreboard + execution     (simple model - decode)
//   dcache    memory hierarchy + TLB + MSHRs   (PerfectFrontEnd - simple)
//   fetch     I-stream: L1I/ITLB/predictor     (full 21164 - PerfectFrontEnd)
//
// Emits machine-readable BENCH_sim.json so the simulated-instructions-per-
// second trajectory is tracked across PRs, and optionally gates against a
// checked-in baseline (exit 1 on a >25% regression).
//
// Usage:
//   bench_sim_throughput [--quick] [--json PATH] [--baseline PATH]
//                        [--max-threads N]
//
//   --quick       1 repetition per measurement (the CI mode).
//   --json PATH   where to write BENCH_sim.json (default: cwd).
//   --baseline    baseline JSON with "min_instrs_per_sec" per model tag;
//                 exit 1 if any measured throughput falls below 75% of it.
//   --max-threads cap for the thread-scaling sweep (default 8).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "lang/Parser.h"
#include "sim/Machine.h"
#include "support/Str.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-\p Reps wall time of \p Fn, in nanoseconds.
template <typename FnT> uint64_t bestOf(int Reps, FnT Fn) {
  uint64_t Best = ~0ull;
  for (int R = 0; R != Reps; ++R) {
    uint64_t T0 = nowNs();
    Fn();
    Best = std::min(Best, nowNs() - T0);
  }
  return Best;
}

/// The machine models, ordered so each one enables one more subsystem than
/// the previous: the differential times are the per-phase breakdown.
struct ModelSpec {
  const char *Tag;
  sim::MachineConfig C;
  uint64_t MaxCycles;
};

std::vector<ModelSpec> models() {
  std::vector<ModelSpec> Ms;
  // Predecode only: a zero budget exits before the first simulated cycle.
  Ms.push_back({"decode", {}, 0});
  sim::MachineConfig Simple;
  Simple.SimpleModel = true;
  Simple.SimpleHitRate = 0.8;
  Ms.push_back({"simple80", Simple, 50000000000ull});
  sim::MachineConfig Pfe;
  Pfe.PerfectFrontEnd = true;
  Ms.push_back({"pfe", Pfe, 50000000000ull});
  Ms.push_back({"21164", {}, 50000000000ull});
  return Ms;
}

struct WorkloadRow {
  std::string Name;
  uint64_t Instrs = 0; ///< retired dynamic instructions on the full model.
  uint64_t Ns[4] = {0, 0, 0, 0}; ///< fast-core time under each model.
  uint64_t RefNs = 0;            ///< reference core, full model.
};

struct ScalePoint {
  unsigned Threads;
  uint64_t WallNs;
};

/// Reads "min_instrs_per_sec" entries from the (intentionally simple)
/// baseline JSON: lines of the form  "TAG": NUMBER.
std::vector<std::pair<std::string, double>>
readBaseline(const std::string &Path) {
  std::vector<std::pair<std::string, double>> Entries;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "FATAL: cannot read baseline %s\n", Path.c_str());
    std::exit(1);
  }
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Q0 = Line.find('"');
    if (Q0 == std::string::npos)
      continue;
    size_t Q1 = Line.find('"', Q0 + 1);
    if (Q1 == std::string::npos)
      continue;
    std::string Tag = Line.substr(Q0 + 1, Q1 - Q0 - 1);
    size_t Colon = Line.find(':', Q1);
    if (Colon == std::string::npos || Tag == "schema" ||
        Tag == "min_instrs_per_sec" || Tag == "min_speedup")
      continue;
    double V = std::atof(Line.c_str() + Colon + 1);
    if (V > 0)
      Entries.emplace_back(Tag, V);
  }
  return Entries;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath = "BENCH_sim.json";
  std::string BaselinePath;
  unsigned MaxThreads = 8;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 != argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--baseline") && I + 1 != argc)
      BaselinePath = argv[++I];
    else if (!std::strcmp(argv[I], "--max-threads") && I + 1 != argc)
      MaxThreads = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[I]);
      return 2;
    }
  }

  const int Reps = Quick ? 1 : 3;
  const std::vector<ModelSpec> Models = models();

  std::printf("simulator-throughput benchmark (%s mode, best of %d; "
              "workloads compiled at BS+LU8+TrS)\n",
              Quick ? "quick" : "full", Reps);

  // Compile every workload once at the headline configuration.
  CompileOptions Opts;
  Opts.Scheduler = sched::SchedulerKind::Balanced;
  Opts.UnrollFactor = 8;
  Opts.TraceScheduling = true;
  Opts.VerifyPasses = false; // timing the simulator; tests verify.
  std::vector<ir::Module> Modules;
  std::vector<WorkloadRow> Rows;
  for (const Workload &W : workloads()) {
    lang::Program P = parseWorkload(W);
    CompileResult C = compileProgram(P, Opts);
    if (!C.ok()) {
      std::fprintf(stderr, "FATAL: %s: %s\n", W.Name, C.Error.c_str());
      return 1;
    }
    Modules.push_back(std::move(C.M));
    WorkloadRow R;
    R.Name = W.Name;
    Rows.push_back(std::move(R));
  }

  // Measure: fast core under every model, reference core under the full
  // model, and a field-level equivalence cross-check of the two cores.
  for (size_t WI = 0; WI != Modules.size(); ++WI) {
    const ir::Module &M = Modules[WI];
    WorkloadRow &R = Rows[WI];
    for (size_t MI = 0; MI != Models.size(); ++MI) {
      sim::MachineConfig C = Models[MI].C;
      C.Impl = sim::SimImpl::Fast;
      sim::SimResult First = sim::simulate(M, C, Models[MI].MaxCycles);
      if (!First.ok() ||
          (!First.Finished && Models[MI].MaxCycles != 0)) {
        std::fprintf(stderr, "FATAL: %s [%s]: %s\n", R.Name.c_str(),
                     Models[MI].Tag,
                     First.ok() ? "did not finish" : First.Error.c_str());
        return 1;
      }
      if (!std::strcmp(Models[MI].Tag, "21164")) {
        R.Instrs = First.Counts.total();
        // The twin contract, re-checked where the numbers are produced: the
        // reference core must agree on the statistics this bench reports.
        sim::MachineConfig RC = Models[MI].C;
        RC.Impl = sim::SimImpl::Reference;
        uint64_t T0 = nowNs();
        sim::SimResult Ref = sim::simulate(M, RC, Models[MI].MaxCycles);
        R.RefNs = nowNs() - T0;
        if (Ref.Checksum != First.Checksum || Ref.Cycles != First.Cycles ||
            Ref.Counts.total() != First.Counts.total() ||
            Ref.LoadInterlockCycles != First.LoadInterlockCycles) {
          std::fprintf(stderr,
                       "FATAL: %s: fast and reference cores disagree\n",
                       R.Name.c_str());
          return 1;
        }
      }
      R.Ns[MI] = bestOf(Reps, [&] {
        sim::SimResult S = sim::simulate(M, C, Models[MI].MaxCycles);
        (void)S;
      });
    }
  }

  // --- Aggregates -----------------------------------------------------------
  uint64_t TotalInstrs = 0, TotalRefNs = 0;
  uint64_t TotalNs[4] = {0, 0, 0, 0};
  for (const WorkloadRow &R : Rows) {
    TotalInstrs += R.Instrs;
    TotalRefNs += R.RefNs;
    for (size_t MI = 0; MI != 4; ++MI)
      TotalNs[MI] += R.Ns[MI];
  }
  auto Ips = [&](uint64_t Ns) {
    return Ns == 0 ? 0.0
                   : static_cast<double>(TotalInstrs) * 1e9 /
                         static_cast<double>(Ns);
  };
  for (size_t MI = 0; MI != Models.size(); ++MI)
    std::printf("  %-9s %10.2f Minstr/s\n", Models[MI].Tag,
                Ips(TotalNs[MI]) / 1e6);
  double Speedup = TotalNs[3] == 0 ? 0.0
                                   : static_cast<double>(TotalRefNs) /
                                         static_cast<double>(TotalNs[3]);
  // Differential phase shares of the full-model time (clamped: the models
  // are separate runs, so tiny negative differences are measurement noise).
  auto Diff = [](uint64_t A, uint64_t B) { return A > B ? A - B : 0; };
  uint64_t DecodeNs = TotalNs[0];
  uint64_t PipelineNs = Diff(TotalNs[1], TotalNs[0]);
  uint64_t DcacheNs = Diff(TotalNs[2], TotalNs[1]);
  uint64_t FetchNs = Diff(TotalNs[3], TotalNs[2]);
  std::printf("  phases: decode %.1f ms, pipeline %.1f ms, dcache %.1f ms, "
              "fetch %.1f ms\n",
              static_cast<double>(DecodeNs) / 1e6,
              static_cast<double>(PipelineNs) / 1e6,
              static_cast<double>(DcacheNs) / 1e6,
              static_cast<double>(FetchNs) / 1e6);
  std::printf("summary: 21164 %.2f Minstr/s, fast-vs-reference %.2fx\n",
              Ips(TotalNs[3]) / 1e6, Speedup);

  // --- Thread-scaling sweep -------------------------------------------------
  // Wall time to simulate every workload on the full model on a pool of T
  // workers; each simulation is deterministic, so only the wall time varies.
  std::vector<ScalePoint> Scaling;
  for (unsigned T = 1; T <= MaxThreads; T *= 2) {
    uint64_t T0 = nowNs();
    ThreadPool::parallelFor(T, Modules.size(), [&](size_t I) {
      sim::SimResult S = sim::simulate(Modules[I], {});
      (void)S;
    });
    Scaling.push_back({T, nowNs() - T0});
    std::printf("  threads=%u  wall %.1f ms (%zu simulations)\n", T,
                static_cast<double>(Scaling.back().WallNs) / 1e6,
                Modules.size());
  }

  // --- JSON -----------------------------------------------------------------
  {
    std::ostringstream J;
    J << "{\n  \"schema\": \"bsched-sim-throughput-v1\",\n";
    J << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
    J << "  \"compile_config\": \"" << Opts.tag() << "\",\n";
    J << "  \"models\": [\n";
    for (size_t MI = 0; MI != Models.size(); ++MI)
      J << "    {\"tag\": \"" << Models[MI].Tag << "\", "
        << "\"total_sim_ns\": " << TotalNs[MI] << ", "
        << "\"instrs_per_sec\": " << fmtDouble(Ips(TotalNs[MI]), 1) << "}"
        << (MI + 1 == Models.size() ? "\n" : ",\n");
    J << "  ],\n";
    J << "  \"phases\": {\"decode_ns\": " << DecodeNs
      << ", \"pipeline_ns\": " << PipelineNs
      << ", \"dcache_ns\": " << DcacheNs << ", \"fetch_ns\": " << FetchNs
      << "},\n";
    J << "  \"workloads\": [\n";
    for (size_t WI = 0; WI != Rows.size(); ++WI) {
      const WorkloadRow &R = Rows[WI];
      J << "    {\"name\": \"" << R.Name << "\", \"instrs\": " << R.Instrs;
      for (size_t MI = 0; MI != Models.size(); ++MI)
        J << ", \"" << Models[MI].Tag << "_ns\": " << R.Ns[MI];
      J << ", \"ref_21164_ns\": " << R.RefNs << "}"
        << (WI + 1 == Rows.size() ? "\n" : ",\n");
    }
    J << "  ],\n  \"thread_scaling\": [";
    for (size_t I = 0; I != Scaling.size(); ++I)
      J << (I ? ", " : "") << "{\"threads\": " << Scaling[I].Threads
        << ", \"wall_ns\": " << Scaling[I].WallNs << "}";
    J << "],\n";
    J << "  \"summary\": {\"total_instrs\": " << TotalInstrs << ", "
      << "\"instrs_per_sec\": " << fmtDouble(Ips(TotalNs[3]), 1) << ", "
      << "\"fast_vs_reference_speedup\": " << fmtDouble(Speedup, 3)
      << "}\n}\n";
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Out << J.str();
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  // --- Baseline gate --------------------------------------------------------
  if (!BaselinePath.empty()) {
    bool Failed = false;
    for (const auto &[Tag, MinIps] : readBaseline(BaselinePath)) {
      const uint64_t *Found = nullptr;
      for (size_t MI = 0; MI != Models.size(); ++MI)
        if (Tag == Models[MI].Tag)
          Found = &TotalNs[MI];
      if (!Found) {
        std::fprintf(stderr, "baseline tag %s not measured\n", Tag.c_str());
        Failed = true;
        continue;
      }
      double Measured = Ips(*Found);
      double Floor = 0.75 * MinIps;
      std::printf("gate: %-9s %12.0f instr/s (baseline %.0f, floor %.0f) %s\n",
                  Tag.c_str(), Measured, MinIps, Floor,
                  Measured >= Floor ? "ok" : "REGRESSION");
      if (Measured < Floor)
        Failed = true;
    }
    if (Failed) {
      std::fprintf(stderr,
                   "FAIL: simulator throughput regressed >25%% vs baseline\n");
      return 1;
    }
  }
  return 0;
}
