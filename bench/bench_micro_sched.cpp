//===- bench/bench_micro_sched.cpp - Scheduler microbenchmarks --------------===//
//
// google-benchmark microbenchmarks of the compile-time cost of the core
// algorithms: dependence-DAG construction, the Kerns-Eggers balanced-weight
// computation (whose O(n^2)-with-bitsets reachability closure the 1993
// paper flags as its main cost), and list scheduling, across block sizes
// typical of unrolled loop bodies.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"
#include "sched/DepDAG.h"
#include "sched/Schedule.h"
#include "support/RNG.h"

#include <benchmark/benchmark.h>

using namespace bsched;
using namespace bsched::ir;
using namespace bsched::sched;

namespace {

/// Synthesizes a block of N instructions with a load-heavy mix resembling an
/// unrolled stencil body: ~1/3 loads, address adds, FP arithmetic chains.
struct SyntheticBlock {
  Function F;
  std::vector<Instr> Instrs;
  std::vector<const Instr *> Ptrs;

  explicit SyntheticBlock(unsigned N, uint64_t Seed = 7) {
    RNG Rng(Seed);
    Reg Base = F.makeReg(RegClass::Int);
    std::vector<Reg> FpVals{F.makeReg(RegClass::Fp)};
    {
      Instr In;
      In.Op = Opcode::FLdI;
      In.Dst = FpVals[0];
      In.setFImm(1.0);
      Instrs.push_back(In);
    }
    for (unsigned I = 1; I + 1 < N; ++I) {
      Instr In;
      switch (Rng.nextBelow(3)) {
      case 0: { // load
        In.Op = Opcode::FLoad;
        In.Dst = F.makeReg(RegClass::Fp);
        In.Base = Base;
        In.Offset = static_cast<int64_t>(Rng.nextBelow(64)) * 8;
        In.Mem.ArrayId = static_cast<int>(Rng.nextBelow(3));
        In.Mem.HasForm = true;
        In.Mem.Const = In.Offset;
        FpVals.push_back(In.Dst);
        break;
      }
      case 1: { // FP arithmetic on two prior values
        In.Op = Rng.nextBool(0.8) ? Opcode::FAdd : Opcode::FMul;
        In.Dst = F.makeReg(RegClass::Fp);
        In.SrcA = FpVals[Rng.nextBelow(FpVals.size())];
        In.SrcB = FpVals[Rng.nextBelow(FpVals.size())];
        FpVals.push_back(In.Dst);
        break;
      }
      default: { // store of a prior value
        In.Op = Opcode::FStore;
        In.SrcA = FpVals[Rng.nextBelow(FpVals.size())];
        In.Base = Base;
        In.Offset = static_cast<int64_t>(Rng.nextBelow(64)) * 8;
        In.Mem.ArrayId = static_cast<int>(Rng.nextBelow(3));
        In.Mem.HasForm = true;
        In.Mem.Const = In.Offset;
        break;
      }
      }
      Instrs.push_back(In);
    }
    Instr Term;
    Term.Op = Opcode::Ret;
    Instrs.push_back(Term);
    for (const Instr &In : Instrs)
      Ptrs.push_back(&In);
  }
};

void BM_BuildDepDAG(benchmark::State &State) {
  SyntheticBlock B(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    DepDAG G = buildDepDAG(B.Ptrs);
    benchmark::DoNotOptimize(G.size());
  }
  State.SetComplexityN(State.range(0));
}

void BM_BalancedWeights(benchmark::State &State) {
  SyntheticBlock B(static_cast<unsigned>(State.range(0)));
  DepDAG G = buildDepDAG(B.Ptrs);
  addBlockControlEdges(G, B.Ptrs);
  for (auto _ : State) {
    std::vector<double> W = balancedWeights(G, B.Ptrs);
    benchmark::DoNotOptimize(W.data());
  }
  State.SetComplexityN(State.range(0));
}

void BM_TraditionalWeights(benchmark::State &State) {
  SyntheticBlock B(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    std::vector<double> W = traditionalWeights(B.Ptrs);
    benchmark::DoNotOptimize(W.data());
  }
}

void BM_ListSchedule(benchmark::State &State) {
  SyntheticBlock B(static_cast<unsigned>(State.range(0)));
  DepDAG G = buildDepDAG(B.Ptrs);
  addBlockControlEdges(G, B.Ptrs);
  std::vector<double> W = balancedWeights(G, B.Ptrs);
  for (auto _ : State) {
    std::vector<unsigned> Order = listSchedule(G, W, B.Ptrs);
    benchmark::DoNotOptimize(Order.data());
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_BuildDepDAG)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Complexity();
BENCHMARK(BM_BalancedWeights)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Complexity();
BENCHMARK(BM_TraditionalWeights)->Arg(128)->Arg(512);
BENCHMARK(BM_ListSchedule)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Complexity();

BENCHMARK_MAIN();
