//===- bench/bench_table3_latency.cpp - Table 3: processor latencies -------===//
//
// Regenerates Table 3: fixed instruction latencies, read from the live
// opcode table, with a measured verification: a serial dependence chain of
// each instruction class must cost its configured latency per link.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

#include "lang/Parser.h"
#include "lower/Lower.h"
#include "regalloc/LinearScan.h"
#include "sched/Schedule.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::ir;

namespace {

/// Cycles per link of a serial chain of the given expression (the update
/// must depend on the previous value).
double measureChain(const std::string &VarDecls, const std::string &Update) {
  const int64_t Iters = 30000;
  std::string Src = "array Out[4] output;\n" + VarDecls;
  Src += "for (r = 0; r < " + std::to_string(Iters) + "; r += 1) { " +
         Update + " }\n";
  Src += "Out[0] = x + 0.0;\n";
  lang::ParseResult PR = lang::parseProgram(Src, "latency-chain");
  if (!PR.ok()) {
    std::fprintf(stderr, "chain probe parse error: %s\n", PR.Error.c_str());
    std::exit(1);
  }
  std::string E = lang::checkProgram(PR.Prog);
  if (!E.empty()) {
    std::fprintf(stderr, "chain probe check error: %s\n", E.c_str());
    std::exit(1);
  }
  lower::LowerResult LR = lower::lowerProgram(PR.Prog);
  sched::scheduleFunction(LR.M, sched::SchedulerKind::Traditional);
  regalloc::allocateRegisters(LR.M);
  sim::SimResult R = sim::simulate(LR.M);
  return static_cast<double>(R.FixedInterlockCycles) /
             static_cast<double>(Iters) +
         1.0; // issue slot of the chain instruction itself
}

// Reads the live opcode table and probes latencies with direct simulate()
// calls; nothing routes through runCached, so the grid is empty.
std::vector<bsched::driver::ExperimentJob> jobs() { return {}; }

int run() {
  heading("Table 3: Processor latencies (from the opcode table)");

  Table T({"Instruction type", "Latency"});
  T.addRow({"integer op", std::to_string(opInfo(Opcode::IAdd).Latency)});
  T.addRow({"integer multiply", std::to_string(opInfo(Opcode::IMul).Latency)});
  T.addRow({"load (L1 hit)", std::to_string(opInfo(Opcode::Load).Latency)});
  T.addRow({"store", std::to_string(opInfo(Opcode::Store).Latency)});
  T.addRow({"FP op (excluding divide)",
            std::to_string(opInfo(Opcode::FAdd).Latency)});
  T.addRow({"FP divide (53-bit fraction)",
            std::to_string(opInfo(Opcode::FDiv).Latency)});
  T.addRow({"branch (scheduling weight)",
            std::to_string(opInfo(Opcode::Br).Latency)});
  emit(T);

  heading("Verification: measured cycles per serial-chain link");
  Table V({"Chain", "Configured", "Measured"});
  struct Probe {
    const char *Name;
    const char *Decls;
    const char *Update;
    int Expect;
  } Probes[] = {
      {"integer add", "var x int = 1;\n", "x = x + 3;",
       opInfo(Opcode::IAdd).Latency},
      {"integer multiply", "var x int = 1;\n", "x = x * 1;",
       opInfo(Opcode::IMul).Latency},
      {"FP add", "var x = 1.0;\n", "x = x + 0.5;",
       opInfo(Opcode::FAdd).Latency},
      {"FP multiply", "var x = 1.0;\n", "x = x * 1.0001;",
       opInfo(Opcode::FMul).Latency},
      {"FP divide", "var x = 123456.0;\n", "x = x / 1.0001;",
       opInfo(Opcode::FDiv).Latency},
  };
  for (const Probe &P : Probes)
    V.addRow({P.Name, std::to_string(P.Expect),
              fmtDouble(measureChain(P.Decls, P.Update), 1)});
  emit(V);
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table3_latency,
                   "Table 3: processor latencies and serial-chain probes")
