//===- bench/bench_compile_throughput.cpp - Compile-throughput tracker ------===//
//
// Times the hot compilation path end to end and per phase, for every
// workload at unroll {1,4,8} with and without trace scheduling, against both
// the optimized scheduler core and the preserved reference implementation
// (sched::SchedImpl::Reference). Emits machine-readable BENCH_compile.json
// so the compile-throughput trajectory is tracked across PRs, and optionally
// gates against a checked-in baseline (exit 1 on a >25% regression).
//
// Usage:
//   bench_compile_throughput [--quick] [--json PATH] [--baseline PATH]
//                            [--max-threads N]
//
//   --quick       1 repetition per measurement and reference timings only
//                 for the unroll-8 configurations (the CI mode).
//   --json PATH   where to write BENCH_compile.json (default: cwd).
//   --baseline    baseline JSON with "min_instrs_per_sec" per config tag;
//                 exit 1 if any measured throughput falls below 75% of it.
//   --max-threads cap for the thread-scaling sweep (default 8).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "support/Str.h"
#include "support/ThreadPool.h"
#include "xform/Unroll.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-\p Reps wall time of \p Fn, in nanoseconds.
template <typename FnT> uint64_t bestOf(int Reps, FnT Fn) {
  uint64_t Best = ~0ull;
  for (int R = 0; R != Reps; ++R) {
    uint64_t T0 = nowNs();
    Fn();
    Best = std::min(Best, nowNs() - T0);
  }
  return Best;
}

struct BenchConfig {
  int Unroll;
  bool Traces;
  std::string Tag; ///< CompileOptions::tag() of the fast variant.
};

CompileOptions optionsFor(const BenchConfig &C, sched::SchedImpl Impl) {
  CompileOptions O;
  O.Scheduler = sched::SchedulerKind::Balanced;
  O.UnrollFactor = C.Unroll;
  O.TraceScheduling = C.Traces;
  O.VerifyPasses = false; // timing the pipeline; tests/fuzzing verify.
  O.Balance.Impl = Impl;
  return O;
}

unsigned countInstrs(const ir::Module &M) {
  unsigned N = 0;
  for (const ir::BasicBlock &B : M.Fn.Blocks)
    N += static_cast<unsigned>(B.Instrs.size());
  return N;
}

/// Per-phase timings over a workload's lowered (and unrolled) module:
/// cleanup and the profiling interpreter at pipeline scope, the three
/// scheduler phases over every schedulable block, and (for trace configs)
/// the trace scheduler end to end with the fast core's formation /
/// compaction / compensation split.
struct PhaseTimes {
  /// Front-end: lang::parseProgram and lang::checkProgram over the raw
  /// kernel text (ROADMAP item 1: with these, the phase breakdown finally
  /// sums to wall time). Implementation-independent — measured once per
  /// workload/config, identical for the reference twin.
  uint64_t ParseNs = 0, CheckNs = 0;
  uint64_t CleanupNs = 0, ProfileNs = 0;
  uint64_t DagNs = 0, WeightsNs = 0, ListNs = 0;
  uint64_t TraceTotalNs = 0; ///< whole traceScheduleFunction call.
  /// TraceStats phase split (fast core only; zero for the reference twin,
  /// which reports just the total).
  uint64_t TraceFormNs = 0, TraceCompactNs = 0, TraceCompNs = 0;
};

/// Mirrors the pipeline up to (but excluding) scheduling, then times each
/// phase with the given implementation (Reference selects the seed cleanup,
/// interpreter, DAG builder, weights, and list scheduler).
PhaseTimes timePhases(const Workload &W, const lang::Program &Source,
                      int Unroll, bool Traces, int Reps,
                      sched::SchedImpl Impl) {
  PhaseTimes T;
  // Front end, from the raw text. checkProgram annotates the AST in place,
  // so each rep checks a fresh parse (the copy cost is the parse itself,
  // timed separately above it).
  T.ParseNs = bestOf(Reps, [&] {
    lang::ParseResult PR = lang::parseProgram(W.Source, W.Name);
    (void)PR;
  });
  lang::ParseResult Parsed = lang::parseProgram(W.Source, W.Name);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "FATAL: parse %s: %s\n", W.Name, Parsed.Error.c_str());
    std::exit(1);
  }
  T.CheckNs = bestOf(Reps, [&] {
    lang::Program Copy = Parsed.Prog;
    if (std::string E = lang::checkProgram(Copy); !E.empty()) {
      std::fprintf(stderr, "FATAL: check %s: %s\n", W.Name, E.c_str());
      std::exit(1);
    }
  });

  lang::Program P = Source;
  if (Unroll > 1) {
    xform::unrollLoops(P, Unroll);
    // Re-check after the transform: lowering needs the checker's annotations
    // on the statements unrolling introduced (compileProgram does the same).
    if (std::string E = lang::checkProgram(P); !E.empty()) {
      std::fprintf(stderr, "FATAL: recheck: %s\n", E.c_str());
      std::exit(1);
    }
  }
  lower::LowerResult LR = lower::lowerProgram(P, {});
  if (!LR.ok()) {
    std::fprintf(stderr, "FATAL: lower: %s\n", LR.Error.c_str());
    std::exit(1);
  }
  bool Ref = Impl == sched::SchedImpl::Reference;

  // Cleanup mutates the module, so each rep works on a fresh copy; the copy
  // cost is common to both implementations.
  T.CleanupNs = bestOf(Reps, [&] {
    ir::Module Copy = LR.M;
    opt::cleanupModule(Copy, Ref);
  });
  opt::cleanupModule(LR.M);
  if (Traces) {
    T.ProfileNs = bestOf(Reps, [&] {
      ir::InterpResult IR =
          Ref ? ir::interpretByInstr(LR.M) : ir::interpret(LR.M);
      (void)IR;
    });
    // Trace scheduling mutates the module, so each rep works on a fresh copy
    // (the copy cost is common to both implementations). The fast core's
    // TraceStats timers split the total into formation / compaction /
    // compensation; the reference twin reports only the total.
    ir::InterpResult Profile = ir::interpret(LR.M);
    sched::BalanceOptions TOpts;
    TOpts.Impl = Impl;
    trace::TraceStats Last;
    T.TraceTotalNs = bestOf(Reps, [&] {
      ir::Module Copy = LR.M;
      Last = trace::traceScheduleFunction(
          Copy, Profile, sched::SchedulerKind::Balanced, TOpts,
          Ref ? trace::TraceImpl::Reference : trace::TraceImpl::Fast);
    });
    T.TraceFormNs = Last.FormNs;
    T.TraceCompactNs = Last.CompactNs;
    T.TraceCompNs = Last.CompensationNs;
  }

  std::vector<std::vector<const ir::Instr *>> Regions;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks) {
    if (B.Instrs.size() <= 2)
      continue;
    std::vector<const ir::Instr *> Ptrs;
    Ptrs.reserve(B.Instrs.size());
    for (const ir::Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    Regions.push_back(std::move(Ptrs));
  }

  T.DagNs = bestOf(Reps, [&] {
    for (const auto &R : Regions) {
      sched::DepDAG G = sched::buildDepDAG(R, Impl);
      (void)G;
    }
  });
  // Weights and list scheduling run on the fast-built DAG either way: the
  // two builders produce identical DAGs, and this isolates each phase.
  std::vector<sched::DepDAG> Dags;
  std::vector<std::vector<double>> Ws;
  for (const auto &R : Regions) {
    Dags.push_back(sched::buildDepDAG(R));
    sched::addBlockControlEdges(Dags.back(), R);
  }
  sched::BalanceOptions BOpts;
  BOpts.Impl = Impl;
  T.WeightsNs = bestOf(Reps, [&] {
    for (size_t I = 0; I != Regions.size(); ++I) {
      std::vector<double> W = sched::balancedWeights(Dags[I], Regions[I], BOpts);
      if (I >= Ws.size())
        Ws.push_back(std::move(W));
    }
  });
  T.ListNs = bestOf(Reps, [&] {
    for (size_t I = 0; I != Regions.size(); ++I) {
      std::vector<unsigned> Order = sched::listSchedule(
          Dags[I], Ws[I], Regions[I], sched::DefaultPressureThreshold, Impl);
      (void)Order;
    }
  });
  return T;
}

struct WorkloadRow {
  std::string Name;
  unsigned Instrs = 0;
  uint64_t FastNs = 0, RefNs = 0; ///< RefNs 0 when not measured.
  PhaseTimes FastPhases, RefPhases;
};

struct ConfigRow {
  BenchConfig Config;
  std::vector<WorkloadRow> Rows;
  uint64_t totalFastNs() const {
    uint64_t S = 0;
    for (const auto &R : Rows)
      S += R.FastNs;
    return S;
  }
  uint64_t totalRefNs() const {
    uint64_t S = 0;
    for (const auto &R : Rows)
      S += R.RefNs;
    return S;
  }
  uint64_t totalInstrs() const {
    uint64_t S = 0;
    for (const auto &R : Rows)
      S += R.Instrs;
    return S;
  }
  double instrsPerSec() const {
    uint64_t Ns = totalFastNs();
    return Ns == 0 ? 0.0
                   : static_cast<double>(totalInstrs()) * 1e9 /
                         static_cast<double>(Ns);
  }
  double speedup() const {
    uint64_t F = totalFastNs(), R = totalRefNs();
    return (F == 0 || R == 0) ? 0.0
                              : static_cast<double>(R) / static_cast<double>(F);
  }
};

struct ScalePoint {
  unsigned Threads;
  uint64_t WallNs;
};

std::string jsonEscape(const std::string &S) { return S; } // tags are plain

/// Reads "min_instrs_per_sec" entries from the (intentionally simple)
/// baseline JSON: lines of the form  "TAG": NUMBER.
std::vector<std::pair<std::string, double>>
readBaseline(const std::string &Path) {
  std::vector<std::pair<std::string, double>> Entries;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "FATAL: cannot read baseline %s\n", Path.c_str());
    std::exit(1);
  }
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Q0 = Line.find('"');
    if (Q0 == std::string::npos)
      continue;
    size_t Q1 = Line.find('"', Q0 + 1);
    if (Q1 == std::string::npos)
      continue;
    std::string Tag = Line.substr(Q0 + 1, Q1 - Q0 - 1);
    size_t Colon = Line.find(':', Q1);
    if (Colon == std::string::npos || Tag == "schema" ||
        Tag == "min_instrs_per_sec")
      continue;
    double V = std::atof(Line.c_str() + Colon + 1);
    if (V > 0)
      Entries.emplace_back(Tag, V);
  }
  return Entries;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath = "BENCH_compile.json";
  std::string BaselinePath;
  unsigned MaxThreads = 8;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 != argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--baseline") && I + 1 != argc)
      BaselinePath = argv[++I];
    else if (!std::strcmp(argv[I], "--max-threads") && I + 1 != argc)
      MaxThreads = static_cast<unsigned>(std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[I]);
      return 2;
    }
  }

  const int Reps = Quick ? 1 : 3;
  const std::vector<BenchConfig> Configs = {
      {1, false, "BS"},          {1, true, "BS+TrS"},
      {4, false, "BS+LU4"},      {4, true, "BS+LU4+TrS"},
      {8, false, "BS+LU8"},      {8, true, "BS+LU8+TrS"},
  };

  std::printf("compile-throughput benchmark (%s mode, best of %d)\n",
              Quick ? "quick" : "full", Reps);

  std::vector<ConfigRow> Results;
  for (const BenchConfig &C : Configs) {
    ConfigRow Row;
    Row.Config = C;
    // Reference timings are the expensive part; in quick mode measure them
    // only where the headline speedup is reported (unroll 8).
    bool TimeRef = !Quick || C.Unroll == 8;
    for (const Workload &W : workloads()) {
      lang::Program P = parseWorkload(W);
      WorkloadRow R;
      R.Name = W.Name;

      CompileOptions Fast = optionsFor(C, sched::SchedImpl::Fast);
      CompileResult FirstCompile = compileProgram(P, Fast);
      if (!FirstCompile.ok()) {
        std::fprintf(stderr, "FATAL: %s [%s]: %s\n", W.Name,
                     Fast.tag().c_str(), FirstCompile.Error.c_str());
        return 1;
      }
      R.Instrs = countInstrs(FirstCompile.M);
      R.FastNs = bestOf(Reps, [&] {
        CompileResult CR = compileProgram(P, Fast);
        (void)CR;
      });
      if (TimeRef) {
        CompileOptions Ref = optionsFor(C, sched::SchedImpl::Reference);
        R.RefNs = bestOf(std::max(1, Reps - 1), [&] {
          CompileResult CR = compileProgram(P, Ref);
          (void)CR;
        });
        R.RefPhases = timePhases(W, P, C.Unroll, C.Traces, 1,
                                 sched::SchedImpl::Reference);
      }
      R.FastPhases =
          timePhases(W, P, C.Unroll, C.Traces, Reps, sched::SchedImpl::Fast);
      Row.Rows.push_back(std::move(R));
    }
    std::printf("  %-12s  %8.0f kinstr/s  end-to-end speedup %.2fx\n",
                C.Tag.c_str(), Row.instrsPerSec() / 1e3,
                Row.speedup());
    if (C.Traces) {
      uint64_t Form = 0, Compact = 0, Comp = 0, FastTr = 0, RefTr = 0;
      for (const WorkloadRow &R : Row.Rows) {
        Form += R.FastPhases.TraceFormNs;
        Compact += R.FastPhases.TraceCompactNs;
        Comp += R.FastPhases.TraceCompNs;
        FastTr += R.FastPhases.TraceTotalNs;
        RefTr += R.RefPhases.TraceTotalNs;
      }
      std::string CoreSpeedup;
      if (FastTr && RefTr)
        CoreSpeedup = "  (trace core " +
                      fmtDouble(static_cast<double>(RefTr) /
                                    static_cast<double>(FastTr),
                                2) +
                      "x)";
      std::printf("                trace form %.2f ms  compact %.2f ms  "
                  "compensation %.2f ms%s\n",
                  static_cast<double>(Form) / 1e6,
                  static_cast<double>(Compact) / 1e6,
                  static_cast<double>(Comp) / 1e6, CoreSpeedup.c_str());
    }
    Results.push_back(std::move(Row));
  }

  // --- Thread-scaling sweep -------------------------------------------------
  // Wall time to compile every (workload, config) job, fast implementation,
  // on a pool of T workers. Results are per-compile deterministic, so only
  // the wall time varies with T.
  std::vector<ScalePoint> Scaling;
  {
    struct Job {
      lang::Program P;
      CompileOptions Opts;
    };
    std::vector<Job> Jobs;
    for (const BenchConfig &C : Configs)
      for (const Workload &W : workloads())
        Jobs.push_back({parseWorkload(W), optionsFor(C, sched::SchedImpl::Fast)});
    for (unsigned T = 1; T <= MaxThreads; T *= 2) {
      uint64_t T0 = nowNs();
      ThreadPool::parallelFor(T, Jobs.size(), [&](size_t I) {
        CompileResult CR = compileProgram(Jobs[I].P, Jobs[I].Opts);
        (void)CR;
      });
      Scaling.push_back({T, nowNs() - T0});
      std::printf("  threads=%u  wall %.1f ms (%zu compiles)\n", T,
                  static_cast<double>(Scaling.back().WallNs) / 1e6,
                  Jobs.size());
    }
  }

  // --- Summary --------------------------------------------------------------
  const ConfigRow *Headline = nullptr;
  for (const ConfigRow &R : Results)
    if (R.Config.Tag == "BS+LU8+TrS")
      Headline = &R;
  double SchedSpeedup = 0.0;
  if (Headline) {
    uint64_t FastSched = 0, RefSched = 0;
    for (const WorkloadRow &R : Headline->Rows) {
      FastSched += R.FastPhases.DagNs + R.FastPhases.WeightsNs +
                   R.FastPhases.ListNs;
      RefSched +=
          R.RefPhases.DagNs + R.RefPhases.WeightsNs + R.RefPhases.ListNs;
    }
    if (FastSched != 0 && RefSched != 0)
      SchedSpeedup =
          static_cast<double>(RefSched) / static_cast<double>(FastSched);
    std::printf("summary: BS+LU8+TrS %.0f kinstr/s, end-to-end %.2fx, "
                "scheduler phases %.2fx\n",
                Headline->instrsPerSec() / 1e3, Headline->speedup(),
                SchedSpeedup);
  }

  // --- JSON -----------------------------------------------------------------
  {
    std::ostringstream J;
    J << "{\n  \"schema\": \"bsched-compile-throughput-v1\",\n";
    J << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
    J << "  \"configs\": [\n";
    for (size_t CI = 0; CI != Results.size(); ++CI) {
      const ConfigRow &R = Results[CI];
      J << "    {\"tag\": \"" << jsonEscape(R.Config.Tag) << "\", "
        << "\"unroll\": " << R.Config.Unroll << ", "
        << "\"traces\": " << (R.Config.Traces ? "true" : "false") << ",\n"
        << "     \"total_instrs\": " << R.totalInstrs() << ", "
        << "\"total_compile_ns\": " << R.totalFastNs() << ", "
        << "\"instrs_per_sec\": " << fmtDouble(R.instrsPerSec(), 1) << ", "
        << "\"end_to_end_speedup\": " << fmtDouble(R.speedup(), 3) << ",\n"
        << "     \"workloads\": [\n";
      for (size_t WI = 0; WI != R.Rows.size(); ++WI) {
        const WorkloadRow &W = R.Rows[WI];
        J << "      {\"name\": \"" << W.Name << "\", \"instrs\": " << W.Instrs
          << ", \"compile_ns\": " << W.FastNs
          << ", \"ref_compile_ns\": " << W.RefNs
          << ", \"phases\": {\"parse_ns\": " << W.FastPhases.ParseNs
          << ", \"check_ns\": " << W.FastPhases.CheckNs
          << ", \"cleanup_ns\": " << W.FastPhases.CleanupNs
          << ", \"profile_ns\": " << W.FastPhases.ProfileNs
          << ", \"dag_ns\": " << W.FastPhases.DagNs
          << ", \"weights_ns\": " << W.FastPhases.WeightsNs
          << ", \"listsched_ns\": " << W.FastPhases.ListNs
          << ", \"trace_total_ns\": " << W.FastPhases.TraceTotalNs
          << ", \"trace_form_ns\": " << W.FastPhases.TraceFormNs
          << ", \"trace_compact_ns\": " << W.FastPhases.TraceCompactNs
          << ", \"trace_compensation_ns\": " << W.FastPhases.TraceCompNs
          << ", \"ref_cleanup_ns\": " << W.RefPhases.CleanupNs
          << ", \"ref_profile_ns\": " << W.RefPhases.ProfileNs
          << ", \"ref_dag_ns\": " << W.RefPhases.DagNs
          << ", \"ref_weights_ns\": " << W.RefPhases.WeightsNs
          << ", \"ref_listsched_ns\": " << W.RefPhases.ListNs
          << ", \"ref_trace_total_ns\": " << W.RefPhases.TraceTotalNs << "}}"
          << (WI + 1 == R.Rows.size() ? "\n" : ",\n");
      }
      J << "     ]}" << (CI + 1 == Results.size() ? "\n" : ",\n");
    }
    J << "  ],\n  \"thread_scaling\": [";
    for (size_t I = 0; I != Scaling.size(); ++I)
      J << (I ? ", " : "") << "{\"threads\": " << Scaling[I].Threads
        << ", \"wall_ns\": " << Scaling[I].WallNs << "}";
    J << "],\n";
    J << "  \"summary\": {\"headline\": \"BS+LU8+TrS\", "
      << "\"instrs_per_sec\": "
      << fmtDouble(Headline ? Headline->instrsPerSec() : 0.0, 1) << ", "
      << "\"end_to_end_speedup\": "
      << fmtDouble(Headline ? Headline->speedup() : 0.0, 3) << ", "
      << "\"scheduler_phase_speedup\": " << fmtDouble(SchedSpeedup, 3)
      << "}\n}\n";
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Out << J.str();
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  // --- Baseline gate --------------------------------------------------------
  if (!BaselinePath.empty()) {
    bool Failed = false;
    for (const auto &[Tag, MinIps] : readBaseline(BaselinePath)) {
      const ConfigRow *Found = nullptr;
      for (const ConfigRow &R : Results)
        if (R.Config.Tag == Tag)
          Found = &R;
      if (!Found) {
        std::fprintf(stderr, "baseline tag %s not measured\n", Tag.c_str());
        Failed = true;
        continue;
      }
      double Ips = Found->instrsPerSec();
      double Floor = 0.75 * MinIps;
      std::printf("gate: %-12s %10.0f instr/s (baseline %.0f, floor %.0f) %s\n",
                  Tag.c_str(), Ips, MinIps, Floor,
                  Ips >= Floor ? "ok" : "REGRESSION");
      if (Ips < Floor)
        Failed = true;
    }
    if (Failed) {
      std::fprintf(stderr,
                   "FAIL: compile throughput regressed >25%% vs baseline\n");
      return 1;
    }
  }
  return 0;
}
