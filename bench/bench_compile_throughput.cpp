//===- bench/bench_compile_throughput.cpp - Compile-throughput tracker ------===//
//
// Times the hot compilation path end to end and per phase, for every
// workload at unroll {1,4,8} with and without trace scheduling, against both
// the optimized scheduler core and the preserved reference implementation
// (sched::SchedImpl::Reference). Emits machine-readable BENCH_compile.json
// so the compile-throughput trajectory is tracked across PRs, and optionally
// gates against a checked-in baseline (exit 1 on a >25% regression).
//
// Also measures the batched compile service under sustained multi-tenant
// load: a deterministic request mix of cache-hit traffic (served from the
// sharded runCached result cache), cache-miss traffic (full cold compiles),
// and profile-cold traffic (trace-scheduled compiles whose profiling run
// misses the sharded profile cache), replayed at 1/2/4/8 pool workers with
// guided chunk dispatch. Reports compiles/s, thread-scaling efficiency, and
// the shard-cache hit/miss/in-flight-wait counters, and cross-checks that
// every request's result is byte-identical across thread counts.
//
// Usage:
//   bench_compile_throughput [--quick] [--json PATH] [--baseline PATH]
//                            [--max-threads N] [--min-scale F]
//
//   --quick       1 repetition per measurement, reference timings only
//                 for the unroll-8 configurations, and a smaller sustained
//                 request mix (the CI mode).
//   --json PATH   where to write BENCH_compile.json (default: cwd).
//   --baseline    baseline JSON with "min_instrs_per_sec" per config tag;
//                 exit 1 if any measured throughput falls below 75% of it.
//   --max-threads cap for the thread-scaling sweeps (default 8).
//   --min-scale F thread-scaling regression gate: exit 1 unless sustained
//                 throughput at --max-threads workers is at least F x the
//                 1-worker throughput. F is the committed floor for an
//                 8-hardware-thread machine and is derated automatically
//                 when fewer hardware threads are available (a 1-core
//                 runner cannot scale, only avoid regressing).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "driver/Compiler.h"
#include "driver/Experiment.h"
#include "driver/ProfileCache.h"
#include "driver/Workloads.h"
#include "lang/Parser.h"
#include "lower/Lower.h"
#include "opt/Cleanup.h"
#include "support/RNG.h"
#include "support/Str.h"
#include "support/ThreadPool.h"
#include "xform/Unroll.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace bsched;
using namespace bsched::driver;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-\p Reps wall time of \p Fn, in nanoseconds.
template <typename FnT> uint64_t bestOf(int Reps, FnT Fn) {
  uint64_t Best = ~0ull;
  for (int R = 0; R != Reps; ++R) {
    uint64_t T0 = nowNs();
    Fn();
    Best = std::min(Best, nowNs() - T0);
  }
  return Best;
}

struct BenchConfig {
  int Unroll;
  bool Traces;
  std::string Tag; ///< CompileOptions::tag() of the fast variant.
};

CompileOptions optionsFor(const BenchConfig &C, sched::SchedImpl Impl) {
  CompileOptions O;
  O.Scheduler = sched::SchedulerKind::Balanced;
  O.UnrollFactor = C.Unroll;
  O.TraceScheduling = C.Traces;
  O.VerifyPasses = false; // timing the pipeline; tests/fuzzing verify.
  O.Balance.Impl = Impl;
  return O;
}

unsigned countInstrs(const ir::Module &M) {
  unsigned N = 0;
  for (const ir::BasicBlock &B : M.Fn.Blocks)
    N += static_cast<unsigned>(B.Instrs.size());
  return N;
}

/// FNV-1a accumulator for the determinism cross-checks.
class Fnv {
public:
  void word(uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  uint64_t get() const { return H; }

private:
  uint64_t H = 1469598103934665603ull;
};

/// Digest of everything the compiled module's consumers can observe — the
/// full instruction stream — so "byte-identical across thread counts" is
/// checked on substance, not on a summary statistic.
uint64_t moduleDigest(const ir::Module &M) {
  Fnv H;
  H.word(M.Fn.Blocks.size());
  for (const ir::BasicBlock &B : M.Fn.Blocks) {
    H.word(B.Instrs.size());
    for (const ir::Instr &I : B.Instrs) {
      H.word(static_cast<uint64_t>(I.Op));
      H.word(I.Dst.Id);
      H.word(I.SrcA.Id);
      H.word(I.SrcB.Id);
      H.word(static_cast<uint64_t>(I.Imm));
      H.word(I.Base.Id);
      H.word(static_cast<uint64_t>(I.Offset));
      H.word(static_cast<uint64_t>(I.Target0));
      H.word(static_cast<uint64_t>(I.Target1));
    }
  }
  return H.get();
}

/// Combines per-request digests in request order: equal result vectors give
/// equal combined digests regardless of which worker produced each entry.
uint64_t combineDigests(const std::vector<uint64_t> &Ds) {
  Fnv H;
  for (uint64_t D : Ds)
    H.word(D);
  return H.get();
}

/// Per-phase timings over a workload's lowered (and unrolled) module:
/// cleanup and the profiling interpreter at pipeline scope, the three
/// scheduler phases over every schedulable block, and (for trace configs)
/// the trace scheduler end to end with the fast core's formation /
/// compaction / compensation split.
struct PhaseTimes {
  /// Front-end: lang::parseProgram and lang::checkProgram over the raw
  /// kernel text (ROADMAP item 1: with these, the phase breakdown finally
  /// sums to wall time). Implementation-independent — measured once per
  /// workload/config, identical for the reference twin.
  uint64_t ParseNs = 0, CheckNs = 0;
  uint64_t CleanupNs = 0, ProfileNs = 0;
  uint64_t DagNs = 0, WeightsNs = 0, ListNs = 0;
  uint64_t TraceTotalNs = 0; ///< whole traceScheduleFunction call.
  /// TraceStats phase split (fast core only; zero for the reference twin,
  /// which reports just the total). WeightsIncrementalNs is the incremental
  /// balanced-weights builder's share of TraceCompactNs.
  uint64_t TraceFormNs = 0, TraceCompactNs = 0, TraceCompNs = 0;
  uint64_t WeightsIncrementalNs = 0;
  /// Cleanup fixpoint instrumentation (CleanupStats): rounds to fixpoint,
  /// liveness solves split into full computes vs. incremental updates, and
  /// per-block pass runs the dirty-block worklist skipped. The liveness and
  /// skip counters stay zero for the reference twin.
  int CleanupRounds = 0;
  int CleanupLivenessFull = 0, CleanupLivenessIncremental = 0;
  int CleanupBlocksSkipped = 0;
};

/// Mirrors the pipeline up to (but excluding) scheduling, then times each
/// phase with the given implementation (Reference selects the seed cleanup,
/// interpreter, DAG builder, weights, and list scheduler).
PhaseTimes timePhases(const Workload &W, const lang::Program &Source,
                      int Unroll, bool Traces, int Reps,
                      sched::SchedImpl Impl) {
  PhaseTimes T;
  // Front end, from the raw text. checkProgram annotates the AST in place,
  // so each rep checks a fresh parse (the copy cost is the parse itself,
  // timed separately above it).
  T.ParseNs = bestOf(Reps, [&] {
    lang::ParseResult PR = lang::parseProgram(W.Source, W.Name);
    (void)PR;
  });
  lang::ParseResult Parsed = lang::parseProgram(W.Source, W.Name);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "FATAL: parse %s: %s\n", W.Name, Parsed.Error.c_str());
    std::exit(1);
  }
  T.CheckNs = bestOf(Reps, [&] {
    lang::Program Copy = Parsed.Prog;
    if (std::string E = lang::checkProgram(Copy); !E.empty()) {
      std::fprintf(stderr, "FATAL: check %s: %s\n", W.Name, E.c_str());
      std::exit(1);
    }
  });

  lang::Program P = Source;
  if (Unroll > 1) {
    xform::unrollLoops(P, Unroll);
    // Re-check after the transform: lowering needs the checker's annotations
    // on the statements unrolling introduced (compileProgram does the same).
    if (std::string E = lang::checkProgram(P); !E.empty()) {
      std::fprintf(stderr, "FATAL: recheck: %s\n", E.c_str());
      std::exit(1);
    }
  }
  lower::LowerResult LR = lower::lowerProgram(P, {});
  if (!LR.ok()) {
    std::fprintf(stderr, "FATAL: lower: %s\n", LR.Error.c_str());
    std::exit(1);
  }
  bool Ref = Impl == sched::SchedImpl::Reference;

  // Cleanup mutates the module, so each rep works on a fresh copy; the copy
  // cost is common to both implementations.
  opt::CleanupStats CS;
  T.CleanupNs = bestOf(Reps, [&] {
    ir::Module Copy = LR.M;
    CS = opt::cleanupModule(Copy, Ref); // deterministic: same stats each rep
  });
  T.CleanupRounds = CS.Iterations;
  T.CleanupLivenessFull = CS.LivenessFullComputes;
  T.CleanupLivenessIncremental = CS.LivenessIncrementalUpdates;
  T.CleanupBlocksSkipped = CS.BlocksSkipped;
  opt::cleanupModule(LR.M);
  if (Traces) {
    T.ProfileNs = bestOf(Reps, [&] {
      ir::InterpResult IR =
          Ref ? ir::interpretByInstr(LR.M) : ir::interpret(LR.M);
      (void)IR;
    });
    // Trace scheduling mutates the module, so each rep works on a fresh copy
    // (the copy cost is common to both implementations). The fast core's
    // TraceStats timers split the total into formation / compaction /
    // compensation; the reference twin reports only the total.
    ir::InterpResult Profile = ir::interpret(LR.M);
    sched::BalanceOptions TOpts;
    TOpts.Impl = Impl;
    trace::TraceStats Last;
    T.TraceTotalNs = bestOf(Reps, [&] {
      ir::Module Copy = LR.M;
      Last = trace::traceScheduleFunction(
          Copy, Profile, sched::SchedulerKind::Balanced, TOpts,
          Ref ? trace::TraceImpl::Reference : trace::TraceImpl::Fast);
    });
    T.TraceFormNs = Last.FormNs;
    T.TraceCompactNs = Last.CompactNs;
    T.TraceCompNs = Last.CompensationNs;
    T.WeightsIncrementalNs = Last.WeightsNs;
  }

  std::vector<std::vector<const ir::Instr *>> Regions;
  for (const ir::BasicBlock &B : LR.M.Fn.Blocks) {
    if (B.Instrs.size() <= 2)
      continue;
    std::vector<const ir::Instr *> Ptrs;
    Ptrs.reserve(B.Instrs.size());
    for (const ir::Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    Regions.push_back(std::move(Ptrs));
  }

  T.DagNs = bestOf(Reps, [&] {
    for (const auto &R : Regions) {
      sched::DepDAG G = sched::buildDepDAG(R, Impl);
      (void)G;
    }
  });
  // Weights and list scheduling run on the fast-built DAG either way: the
  // two builders produce identical DAGs, and this isolates each phase.
  std::vector<sched::DepDAG> Dags;
  std::vector<std::vector<double>> Ws;
  for (const auto &R : Regions) {
    Dags.push_back(sched::buildDepDAG(R));
    sched::addBlockControlEdges(Dags.back(), R);
  }
  sched::BalanceOptions BOpts;
  BOpts.Impl = Impl;
  T.WeightsNs = bestOf(Reps, [&] {
    for (size_t I = 0; I != Regions.size(); ++I) {
      std::vector<double> W = sched::balancedWeights(Dags[I], Regions[I], BOpts);
      if (I >= Ws.size())
        Ws.push_back(std::move(W));
    }
  });
  T.ListNs = bestOf(Reps, [&] {
    for (size_t I = 0; I != Regions.size(); ++I) {
      std::vector<unsigned> Order = sched::listSchedule(
          Dags[I], Ws[I], Regions[I], sched::DefaultPressureThreshold, Impl);
      (void)Order;
    }
  });
  return T;
}

struct WorkloadRow {
  std::string Name;
  unsigned Instrs = 0;
  uint64_t FastNs = 0, RefNs = 0; ///< RefNs 0 when not measured.
  PhaseTimes FastPhases, RefPhases;
};

struct ConfigRow {
  BenchConfig Config;
  std::vector<WorkloadRow> Rows;
  uint64_t totalFastNs() const {
    uint64_t S = 0;
    for (const auto &R : Rows)
      S += R.FastNs;
    return S;
  }
  uint64_t totalRefNs() const {
    uint64_t S = 0;
    for (const auto &R : Rows)
      S += R.RefNs;
    return S;
  }
  uint64_t totalInstrs() const {
    uint64_t S = 0;
    for (const auto &R : Rows)
      S += R.Instrs;
    return S;
  }
  double instrsPerSec() const {
    uint64_t Ns = totalFastNs();
    return Ns == 0 ? 0.0
                   : static_cast<double>(totalInstrs()) * 1e9 /
                         static_cast<double>(Ns);
  }
  double speedup() const {
    uint64_t F = totalFastNs(), R = totalRefNs();
    return (F == 0 || R == 0) ? 0.0
                              : static_cast<double>(R) / static_cast<double>(F);
  }
};

struct ScalePoint {
  unsigned Threads;
  uint64_t WallNs;
};

//===----------------------------------------------------------------------===//
// Sustained compile-service throughput
//===----------------------------------------------------------------------===//

/// One request of the synthetic multi-tenant mix.
struct Request {
  enum Class { Hit, Miss, ProfileCold } Kind;
  size_t WIdx;                  ///< index into workloads().
  driver::CompileOptions Opts;
};

struct SustainedPoint {
  unsigned Threads = 0;
  uint64_t WallNs = 0;
  double CompilesPerSec = 0.0;
  double ScaleVs1T = 0.0;
};

struct SustainedResult {
  size_t Requests = 0, HitReqs = 0, MissReqs = 0, ColdReqs = 0;
  std::vector<SustainedPoint> Points;
  bool Deterministic = true;     ///< per-request digests equal at every T.
  bool RunAllIdentical = true;   ///< runAll(1) and runAll(max) return the
                                 ///< same (pointer-identical) results.
  uint64_t Digest = 0;           ///< combined digest of the 1-thread replay.
  driver::ResultCacheStats ResultCache;   ///< counters after the replays.
  driver::ProfileCacheStats ProfileCache; ///< counters of the last replay.
};

/// Replays a deterministic request mix against the compile service at each
/// thread count and cross-checks that every request's observable result is
/// identical whatever the worker count. Traffic classes:
///
///  - Hit: repeated (workload, config) keys served from the sharded
///    runCached result cache (pre-warmed through runAll before timing, so
///    the timed path is pure lookup — the steady-state shape of repeat
///    tenant traffic).
///  - Miss: full cold compiles (per-request pressure-threshold tenants;
///    nothing at the service layer can memoize them).
///  - ProfileCold: trace-scheduled compiles whose profiling interpretation
///    goes through the sharded, in-flight-deduplicated profile cache; the
///    cache is cleared before every replay so each thread count sees the
///    identical cold/warm pattern.
SustainedResult runSustained(bool Quick, unsigned MaxThreads) {
  const auto &Ws = driver::workloads();
  std::vector<lang::Program> Programs;
  Programs.reserve(Ws.size());
  for (const Workload &W : Ws)
    Programs.push_back(parseWorkload(W));

  // The request mix: 60% hit / 25% miss / 15% profile-cold, drawn from a
  // fixed-seed stream so every run (and every thread count) replays the
  // same trace.
  const size_t NumRequests = Quick ? 800 : 4000;
  const int Unrolls[4] = {1, 2, 4, 8};
  std::vector<Request> Reqs;
  Reqs.reserve(NumRequests);
  SustainedResult Out;
  RNG Rng(0xc041711eull);
  for (size_t I = 0; I != NumRequests; ++I) {
    Request Q;
    Q.WIdx = Rng.nextBelow(Ws.size());
    double Roll = Rng.nextDouble();
    if (Roll < 0.60) {
      Q.Kind = Request::Hit;
      Q.Opts = bench::balanced(Rng.nextBool(0.5) ? 4 : 1);
      ++Out.HitReqs;
    } else if (Roll < 0.85) {
      Q.Kind = Request::Miss;
      Q.Opts = bench::balanced(1);
      // Distinct per-tenant scheduling parameter: every miss request is a
      // genuinely different compile, so no layer can serve it from cache.
      Q.Opts.Balance.PressureThreshold =
          20 + static_cast<int>(Rng.nextBelow(29));
      ++Out.MissReqs;
    } else {
      Q.Kind = Request::ProfileCold;
      Q.Opts = bench::balanced(Unrolls[Rng.nextBelow(4)], /*TrS=*/true);
      ++Out.ColdReqs;
    }
    Reqs.push_back(std::move(Q));
  }
  Out.Requests = NumRequests;

  // Pre-warm the hit working set (and keep the job list: the same grid
  // re-runs through runAll at MaxThreads for the pointer-identity check).
  std::vector<driver::ExperimentJob> HitJobs;
  for (const Workload &W : Ws)
    for (int U : {1, 4})
      HitJobs.push_back({&W, bench::balanced(U), {}});
  std::vector<const driver::RunResult *> Warm = driver::runAll(HitJobs, 1);
  for (const driver::RunResult *R : Warm)
    if (!R->ok()) {
      std::fprintf(stderr, "FATAL: sustained pre-warm: %s\n",
                   R->Error.c_str());
      std::exit(1);
    }

  auto Exec = [&](const Request &Q) -> uint64_t {
    if (Q.Kind == Request::Hit) {
      const driver::RunResult &R = driver::runCached(Ws[Q.WIdx], Q.Opts);
      Fnv H;
      H.word(R.Sim.Cycles);
      H.word(R.Sim.Checksum);
      return H.get();
    }
    driver::CompileResult CR = driver::compileProgram(Programs[Q.WIdx], Q.Opts);
    if (!CR.ok()) {
      std::fprintf(stderr, "FATAL: sustained %s: %s\n", Ws[Q.WIdx].Name,
                   CR.Error.c_str());
      std::exit(1);
    }
    return moduleDigest(CR.M);
  };

  std::vector<uint64_t> Digests(NumRequests);
  uint64_t BaseDigest = 0;
  for (unsigned T = 1; T <= MaxThreads; T *= 2) {
    // Identical cold/warm profile pattern for every replay.
    driver::clearProfileCache();
    uint64_t T0 = nowNs();
    ThreadPool::parallelForChunked(
        T, NumRequests, [&](size_t I) { Digests[I] = Exec(Reqs[I]); },
        ChunkPolicy::Guided);
    uint64_t Wall = nowNs() - T0;
    uint64_t D = combineDigests(Digests);
    if (T == 1) {
      BaseDigest = D;
      Out.Digest = D;
    } else if (D != BaseDigest) {
      Out.Deterministic = false;
    }
    SustainedPoint P;
    P.Threads = T;
    P.WallNs = Wall;
    P.CompilesPerSec = static_cast<double>(NumRequests) * 1e9 /
                       static_cast<double>(Wall);
    P.ScaleVs1T = Out.Points.empty()
                      ? 1.0
                      : static_cast<double>(Out.Points.front().WallNs) /
                            static_cast<double>(Wall);
    Out.Points.push_back(P);
    std::printf("  sustained threads=%u  wall %7.1f ms  %8.0f compiles/s"
                "  scale %.2fx\n",
                T, static_cast<double>(Wall) / 1e6, P.CompilesPerSec,
                P.ScaleVs1T);
  }

  // runAll determinism: the MaxThreads pass must hand back the very same
  // memoized results (stable pointers) the 1-thread pre-warm produced.
  std::vector<const driver::RunResult *> Again =
      driver::runAll(HitJobs, MaxThreads);
  for (size_t I = 0; I != Warm.size(); ++I)
    if (Warm[I] != Again[I])
      Out.RunAllIdentical = false;

  Out.ResultCache = driver::resultCacheStats();
  Out.ProfileCache = driver::profileCacheStats();
  return Out;
}

std::string jsonEscape(const std::string &S) { return S; } // tags are plain

/// Reads "min_instrs_per_sec" entries from the (intentionally simple)
/// baseline JSON: lines of the form  "TAG": NUMBER.
std::vector<std::pair<std::string, double>>
readBaseline(const std::string &Path) {
  std::vector<std::pair<std::string, double>> Entries;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "FATAL: cannot read baseline %s\n", Path.c_str());
    std::exit(1);
  }
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Q0 = Line.find('"');
    if (Q0 == std::string::npos)
      continue;
    size_t Q1 = Line.find('"', Q0 + 1);
    if (Q1 == std::string::npos)
      continue;
    std::string Tag = Line.substr(Q0 + 1, Q1 - Q0 - 1);
    size_t Colon = Line.find(':', Q1);
    if (Colon == std::string::npos || Tag == "schema" ||
        Tag == "min_instrs_per_sec")
      continue;
    double V = std::atof(Line.c_str() + Colon + 1);
    if (V > 0)
      Entries.emplace_back(Tag, V);
  }
  return Entries;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath = "BENCH_compile.json";
  std::string BaselinePath;
  unsigned MaxThreads = 8;
  double MinScale = 0.0; // 0 = gate off.
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 != argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--baseline") && I + 1 != argc)
      BaselinePath = argv[++I];
    else if (!std::strcmp(argv[I], "--max-threads") && I + 1 != argc)
      MaxThreads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--min-scale") && I + 1 != argc)
      MinScale = std::atof(argv[++I]);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[I]);
      return 2;
    }
  }

  const int Reps = Quick ? 1 : 3;
  const std::vector<BenchConfig> Configs = {
      {1, false, "BS"},          {1, true, "BS+TrS"},
      {4, false, "BS+LU4"},      {4, true, "BS+LU4+TrS"},
      {8, false, "BS+LU8"},      {8, true, "BS+LU8+TrS"},
  };

  std::printf("compile-throughput benchmark (%s mode, best of %d)\n",
              Quick ? "quick" : "full", Reps);

  // Untimed warmup sweep over every (config, workload, impl) cell that the
  // loop below measures. One-time lazy costs — allocator arena growth, page
  // faults on first touch of the big scheduler tables — otherwise land in
  // whichever cell happens to run first; quick mode is best-of-1, so a
  // single cold compile there skews its row by an order of magnitude.
  for (const BenchConfig &C : Configs) {
    bool TimeRef = !Quick || C.Unroll == 8;
    for (const Workload &W : workloads()) {
      lang::Program P = parseWorkload(W);
      (void)compileProgram(P, optionsFor(C, sched::SchedImpl::Fast));
      if (TimeRef)
        (void)compileProgram(P, optionsFor(C, sched::SchedImpl::Reference));
    }
  }

  std::vector<ConfigRow> Results;
  for (const BenchConfig &C : Configs) {
    ConfigRow Row;
    Row.Config = C;
    // Reference timings are the expensive part; in quick mode measure them
    // only where the headline speedup is reported (unroll 8).
    bool TimeRef = !Quick || C.Unroll == 8;
    for (const Workload &W : workloads()) {
      lang::Program P = parseWorkload(W);
      WorkloadRow R;
      R.Name = W.Name;

      CompileOptions Fast = optionsFor(C, sched::SchedImpl::Fast);
      CompileResult FirstCompile = compileProgram(P, Fast);
      if (!FirstCompile.ok()) {
        std::fprintf(stderr, "FATAL: %s [%s]: %s\n", W.Name,
                     Fast.tag().c_str(), FirstCompile.Error.c_str());
        return 1;
      }
      R.Instrs = countInstrs(FirstCompile.M);
      R.FastNs = bestOf(Reps, [&] {
        CompileResult CR = compileProgram(P, Fast);
        (void)CR;
      });
      if (TimeRef) {
        CompileOptions Ref = optionsFor(C, sched::SchedImpl::Reference);
        R.RefNs = bestOf(std::max(1, Reps - 1), [&] {
          CompileResult CR = compileProgram(P, Ref);
          (void)CR;
        });
        R.RefPhases = timePhases(W, P, C.Unroll, C.Traces, 1,
                                 sched::SchedImpl::Reference);
      }
      R.FastPhases =
          timePhases(W, P, C.Unroll, C.Traces, Reps, sched::SchedImpl::Fast);
      Row.Rows.push_back(std::move(R));
    }
    // A speedup of 0 means "reference not measured in this mode"; print and
    // emit it as absent rather than as a fake 0.00x ratio.
    if (Row.totalRefNs() != 0)
      std::printf("  %-12s  %8.0f kinstr/s  end-to-end speedup %.2fx\n",
                  C.Tag.c_str(), Row.instrsPerSec() / 1e3, Row.speedup());
    else
      std::printf("  %-12s  %8.0f kinstr/s  end-to-end speedup n/a "
                  "(reference not timed)\n",
                  C.Tag.c_str(), Row.instrsPerSec() / 1e3);
    if (C.Traces) {
      uint64_t Form = 0, Compact = 0, Comp = 0, FastTr = 0, RefTr = 0;
      for (const WorkloadRow &R : Row.Rows) {
        Form += R.FastPhases.TraceFormNs;
        Compact += R.FastPhases.TraceCompactNs;
        Comp += R.FastPhases.TraceCompNs;
        FastTr += R.FastPhases.TraceTotalNs;
        RefTr += R.RefPhases.TraceTotalNs;
      }
      std::string CoreSpeedup;
      if (FastTr && RefTr)
        CoreSpeedup = "  (trace core " +
                      fmtDouble(static_cast<double>(RefTr) /
                                    static_cast<double>(FastTr),
                                2) +
                      "x)";
      std::printf("                trace form %.2f ms  compact %.2f ms  "
                  "compensation %.2f ms%s\n",
                  static_cast<double>(Form) / 1e6,
                  static_cast<double>(Compact) / 1e6,
                  static_cast<double>(Comp) / 1e6, CoreSpeedup.c_str());
    }
    Results.push_back(std::move(Row));
  }

  // --- Thread-scaling sweep -------------------------------------------------
  // Wall time to compile every (workload, config) job, fast implementation,
  // on a pool of T workers draining guided chunks (one pool task per
  // worker, not per compile). Each job's compiled module is digested by
  // index, so "the results are identical for any thread count" is asserted
  // on the full instruction streams, not assumed.
  std::vector<ScalePoint> Scaling;
  bool ScalingDeterministic = true;
  {
    struct Job {
      lang::Program P;
      CompileOptions Opts;
    };
    std::vector<Job> Jobs;
    for (const BenchConfig &C : Configs)
      for (const Workload &W : workloads())
        Jobs.push_back({parseWorkload(W), optionsFor(C, sched::SchedImpl::Fast)});
    // The profile cache stays warm from the per-config phase above (as it
    // is for every point of this sweep, so thread counts see equal work);
    // cold-profile traffic is measured separately by the sustained mode.
    std::vector<uint64_t> Digests(Jobs.size());
    uint64_t BaseDigest = 0;
    for (unsigned T = 1; T <= MaxThreads; T *= 2) {
      uint64_t T0 = nowNs();
      ThreadPool::parallelForChunked(
          T, Jobs.size(),
          [&](size_t I) {
            CompileResult CR = compileProgram(Jobs[I].P, Jobs[I].Opts);
            Digests[I] = moduleDigest(CR.M);
          },
          ChunkPolicy::Guided);
      Scaling.push_back({T, nowNs() - T0});
      uint64_t D = combineDigests(Digests);
      if (T == 1)
        BaseDigest = D;
      else if (D != BaseDigest)
        ScalingDeterministic = false;
      std::printf("  threads=%u  wall %.1f ms (%zu compiles)%s\n", T,
                  static_cast<double>(Scaling.back().WallNs) / 1e6,
                  Jobs.size(),
                  T == 1 || D == BaseDigest ? "" : "  OUTPUT DIVERGED");
    }
  }

  // --- Sustained compile-service throughput ---------------------------------
  std::printf("sustained compile service (%s mix)\n",
              Quick ? "quick" : "full");
  SustainedResult Sustained = runSustained(Quick, MaxThreads);
  std::printf("  requests %zu (hit %zu, miss %zu, profile-cold %zu)  "
              "deterministic %s  runAll identical %s\n",
              Sustained.Requests, Sustained.HitReqs, Sustained.MissReqs,
              Sustained.ColdReqs, Sustained.Deterministic ? "yes" : "NO",
              Sustained.RunAllIdentical ? "yes" : "NO");
  std::printf("  result cache: %llu hits, %llu misses, %llu in-flight waits\n",
              static_cast<unsigned long long>(Sustained.ResultCache.Hits),
              static_cast<unsigned long long>(Sustained.ResultCache.Misses),
              static_cast<unsigned long long>(
                  Sustained.ResultCache.InFlightWaits));
  std::printf("  profile cache: %llu hits, %llu misses, %llu in-flight waits\n",
              static_cast<unsigned long long>(Sustained.ProfileCache.Hits),
              static_cast<unsigned long long>(Sustained.ProfileCache.Misses),
              static_cast<unsigned long long>(
                  Sustained.ProfileCache.InFlightWaits));

  // --- Summary --------------------------------------------------------------
  const ConfigRow *Headline = nullptr;
  for (const ConfigRow &R : Results)
    if (R.Config.Tag == "BS+LU8+TrS")
      Headline = &R;
  double SchedSpeedup = 0.0;
  if (Headline) {
    uint64_t FastSched = 0, RefSched = 0;
    for (const WorkloadRow &R : Headline->Rows) {
      FastSched += R.FastPhases.DagNs + R.FastPhases.WeightsNs +
                   R.FastPhases.ListNs;
      RefSched +=
          R.RefPhases.DagNs + R.RefPhases.WeightsNs + R.RefPhases.ListNs;
    }
    if (FastSched != 0 && RefSched != 0)
      SchedSpeedup =
          static_cast<double>(RefSched) / static_cast<double>(FastSched);
    // Like the per-config rows: a ratio of 0 means "reference not timed in
    // this mode" — print n/a instead of a fake 0.00x (the JSON already
    // emits null for it).
    std::printf("summary: BS+LU8+TrS %.0f kinstr/s, end-to-end ",
                Headline->instrsPerSec() / 1e3);
    if (Headline->totalRefNs() != 0)
      std::printf("%.2fx, ", Headline->speedup());
    else
      std::printf("n/a, ");
    if (SchedSpeedup != 0.0)
      std::printf("scheduler phases %.2fx\n", SchedSpeedup);
    else
      std::printf("scheduler phases n/a\n");
  }

  // --- JSON -----------------------------------------------------------------
  {
    std::ostringstream J;
    J << "{\n  \"schema\": \"bsched-compile-throughput-v3\",\n";
    J << "  \"quick\": " << (Quick ? "true" : "false") << ",\n";
    J << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
    J << "  \"configs\": [\n";
    for (size_t CI = 0; CI != Results.size(); ++CI) {
      const ConfigRow &R = Results[CI];
      // end_to_end_speedup is null (not 0.000) when the reference twin was
      // not timed in this mode: a fake ratio reads as a 1000x regression.
      std::string Speedup =
          R.totalRefNs() == 0 ? "null" : fmtDouble(R.speedup(), 3);
      J << "    {\"tag\": \"" << jsonEscape(R.Config.Tag) << "\", "
        << "\"unroll\": " << R.Config.Unroll << ", "
        << "\"traces\": " << (R.Config.Traces ? "true" : "false") << ",\n"
        << "     \"total_instrs\": " << R.totalInstrs() << ", "
        << "\"total_compile_ns\": " << R.totalFastNs() << ", "
        << "\"instrs_per_sec\": " << fmtDouble(R.instrsPerSec(), 1) << ", "
        << "\"end_to_end_speedup\": " << Speedup << ",\n"
        << "     \"workloads\": [\n";
      for (size_t WI = 0; WI != R.Rows.size(); ++WI) {
        const WorkloadRow &W = R.Rows[WI];
        J << "      {\"name\": \"" << W.Name << "\", \"instrs\": " << W.Instrs
          << ", \"compile_ns\": " << W.FastNs
          << ", \"ref_compile_ns\": " << W.RefNs
          << ", \"phases\": {\"parse_ns\": " << W.FastPhases.ParseNs
          << ", \"check_ns\": " << W.FastPhases.CheckNs
          << ", \"cleanup_ns\": " << W.FastPhases.CleanupNs
          << ", \"profile_ns\": " << W.FastPhases.ProfileNs
          << ", \"dag_ns\": " << W.FastPhases.DagNs
          << ", \"weights_ns\": " << W.FastPhases.WeightsNs
          << ", \"listsched_ns\": " << W.FastPhases.ListNs
          << ", \"trace_total_ns\": " << W.FastPhases.TraceTotalNs
          << ", \"trace_form_ns\": " << W.FastPhases.TraceFormNs
          << ", \"trace_compact_ns\": " << W.FastPhases.TraceCompactNs
          << ", \"trace_compensation_ns\": " << W.FastPhases.TraceCompNs
          << ", \"weights_incremental_ns\": "
          << W.FastPhases.WeightsIncrementalNs
          << ", \"cleanup_rounds\": " << W.FastPhases.CleanupRounds
          << ", \"cleanup_liveness_full_computes\": "
          << W.FastPhases.CleanupLivenessFull
          << ", \"cleanup_liveness_incremental_updates\": "
          << W.FastPhases.CleanupLivenessIncremental
          << ", \"cleanup_blocks_skipped\": "
          << W.FastPhases.CleanupBlocksSkipped
          << ", \"ref_cleanup_ns\": " << W.RefPhases.CleanupNs
          << ", \"ref_profile_ns\": " << W.RefPhases.ProfileNs
          << ", \"ref_dag_ns\": " << W.RefPhases.DagNs
          << ", \"ref_weights_ns\": " << W.RefPhases.WeightsNs
          << ", \"ref_listsched_ns\": " << W.RefPhases.ListNs
          << ", \"ref_trace_total_ns\": " << W.RefPhases.TraceTotalNs << "}}"
          << (WI + 1 == R.Rows.size() ? "\n" : ",\n");
      }
      J << "     ]}" << (CI + 1 == Results.size() ? "\n" : ",\n");
    }
    J << "  ],\n  \"thread_scaling\": [";
    for (size_t I = 0; I != Scaling.size(); ++I)
      J << (I ? ", " : "") << "{\"threads\": " << Scaling[I].Threads
        << ", \"wall_ns\": " << Scaling[I].WallNs << "}";
    J << "],\n";
    J << "  \"thread_scaling_deterministic\": "
      << (ScalingDeterministic ? "true" : "false") << ",\n";
    J << "  \"sustained\": {\"requests\": " << Sustained.Requests
      << ", \"mix\": {\"hit\": " << Sustained.HitReqs
      << ", \"miss\": " << Sustained.MissReqs
      << ", \"profile_cold\": " << Sustained.ColdReqs << "},\n"
      << "    \"deterministic\": "
      << (Sustained.Deterministic ? "true" : "false")
      << ", \"runall_identical_1_vs_max\": "
      << (Sustained.RunAllIdentical ? "true" : "false") << ",\n"
      << "    \"points\": [";
    for (size_t I = 0; I != Sustained.Points.size(); ++I) {
      const SustainedPoint &P = Sustained.Points[I];
      J << (I ? ", " : "") << "{\"threads\": " << P.Threads
        << ", \"wall_ns\": " << P.WallNs << ", \"compiles_per_sec\": "
        << fmtDouble(P.CompilesPerSec, 1) << ", \"scale_vs_1t\": "
        << fmtDouble(P.ScaleVs1T, 3) << "}";
    }
    J << "]},\n";
    J << "  \"result_cache\": {\"hits\": " << Sustained.ResultCache.Hits
      << ", \"misses\": " << Sustained.ResultCache.Misses
      << ", \"inflight_waits\": " << Sustained.ResultCache.InFlightWaits
      << "},\n";
    J << "  \"profile_cache\": {\"hits\": " << Sustained.ProfileCache.Hits
      << ", \"misses\": " << Sustained.ProfileCache.Misses
      << ", \"inflight_waits\": " << Sustained.ProfileCache.InFlightWaits
      << "},\n";
    J << "  \"summary\": {\"headline\": \"BS+LU8+TrS\", "
      << "\"instrs_per_sec\": "
      << fmtDouble(Headline ? Headline->instrsPerSec() : 0.0, 1) << ", "
      << "\"end_to_end_speedup\": "
      << (Headline && Headline->totalRefNs() != 0
              ? fmtDouble(Headline->speedup(), 3)
              : std::string("null"))
      << ", "
      << "\"scheduler_phase_speedup\": "
      << (SchedSpeedup != 0.0 ? fmtDouble(SchedSpeedup, 3)
                              : std::string("null"))
      << "}\n}\n";
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Out << J.str();
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  // --- Baseline gate --------------------------------------------------------
  if (!BaselinePath.empty()) {
    bool Failed = false;
    for (const auto &[Tag, MinIps] : readBaseline(BaselinePath)) {
      const ConfigRow *Found = nullptr;
      for (const ConfigRow &R : Results)
        if (R.Config.Tag == Tag)
          Found = &R;
      if (!Found) {
        std::fprintf(stderr, "baseline tag %s not measured\n", Tag.c_str());
        Failed = true;
        continue;
      }
      double Ips = Found->instrsPerSec();
      double Floor = 0.75 * MinIps;
      std::printf("gate: %-12s %10.0f instr/s (baseline %.0f, floor %.0f) %s\n",
                  Tag.c_str(), Ips, MinIps, Floor,
                  Ips >= Floor ? "ok" : "REGRESSION");
      if (Ips < Floor)
        Failed = true;
    }
    if (Failed) {
      std::fprintf(stderr,
                   "FAIL: compile throughput regressed >25%% vs baseline\n");
      return 1;
    }
  }

  // --- Determinism gate -----------------------------------------------------
  // Divergent output across thread counts is a correctness bug, not a
  // performance number; always fatal.
  if (!ScalingDeterministic || !Sustained.Deterministic ||
      !Sustained.RunAllIdentical) {
    std::fprintf(stderr, "FAIL: results differ across thread counts "
                         "(scaling %d, sustained %d, runAll %d)\n",
                 ScalingDeterministic, Sustained.Deterministic,
                 Sustained.RunAllIdentical);
    return 1;
  }

  // --- Thread-scaling gate --------------------------------------------------
  // The committed floor (--min-scale, set in CI) is calibrated for an
  // 8-hardware-thread machine; with fewer cores perfect scaling is capped
  // at the core count, so derate the floor to 0.6x the available cores —
  // and on a single-core machine just require that extra workers do not
  // regress the 1-worker wall time by more than ~30%.
  if (MinScale > 0.0 && Sustained.Points.size() >= 2) {
    unsigned HW = std::max(1u, std::thread::hardware_concurrency());
    double Floor = MinScale;
    if (HW < 8)
      Floor = std::min(MinScale, HW > 1 ? 0.6 * static_cast<double>(HW) : 0.7);
    double Scale = Sustained.Points.back().ScaleVs1T;
    std::printf("gate: sustained scale %ut/%ut = %.2fx (floor %.2fx, "
                "%u hardware threads) %s\n",
                Sustained.Points.back().Threads, 1u, Scale, Floor, HW,
                Scale >= Floor ? "ok" : "REGRESSION");
    if (Scale < Floor) {
      std::fprintf(stderr, "FAIL: sustained thread scaling below floor\n");
      return 1;
    }
  }
  return 0;
}
