//===- bench/bench_suite.cpp - Unified experiment suite runner -------------===//
//
// bsched-suite: runs any subset of the paper's table/ablation benches in one
// process over one shared result cache. The cross-table (workload, options,
// machine) overlap is deduplicated by runCached key before dispatch, the
// unique jobs fan out over ThreadPool::parallelForChunked (guided — the mix
// of microsecond compiles and multi-second simulations is exactly the
// non-uniform-duration case guided self-scheduling serves), and each table's
// emitter then assembles its output from the warm cache. With a persistent
// artifact store configured (--store or BSCHED_ARTIFACT_DIR), results
// outlive the process: a warm re-run deserializes instead of recomputing.
//
// Output contract: every table's bytes are identical to its standalone
// bench_<table> binary, for any thread count, cold or warm store
// (--verify-standalone re-runs the standalone binaries and compares).
//
// Usage:
//   --list                   list registered tables and exit
//   --tables a,b,c           run this subset (default: every table)
//   --quick                  cheap CI subset (table1, table4, table5)
//   --threads N              warmup fan-out threads (0 = one per hw thread)
//   --store DIR              artifact store directory (also exported to
//                            standalone children via BSCHED_ARTIFACT_DIR)
//   --measure                forced-cold pass (disk reads off) then warm
//                            pass (memory cleared, disk reads on); records
//                            both and checks the outputs byte-identical
//   --json PATH              suite JSON (default: BENCH_suite.json)
//   --out-dir DIR            also write per-table <name>.txt / <name>.json
//   --verify-standalone DIR  run DIR/bench_<name> per table, compare bytes
//   --min-disk-hit-rate X    gate: warm-pass disk hit rate floor (measure)
//   --min-warm-speedup X     gate: cold/warm wall-time floor (measure)
//
//===----------------------------------------------------------------------===//

#include "Suite.h"

#include "driver/ArtifactStore.h"
#include "driver/ProfileCache.h"
#include "support/Serialize.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include <stdlib.h>

using namespace bsched;
using namespace bsched::bench;

BSCHED_SUITE_ALL_TABLES(BSCHED_SUITE_DECLARE)

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<SuiteTable> allTables() {
  std::vector<SuiteTable> Tables;
#define BSCHED_SUITE_COLLECT(NAME) Tables.push_back(bsched_suite_table_##NAME());
  BSCHED_SUITE_ALL_TABLES(BSCHED_SUITE_COLLECT)
#undef BSCHED_SUITE_COLLECT
  return Tables;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma != Pos)
      Parts.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Parts;
}

struct TableRun {
  SuiteTable T;
  size_t JobCount = 0;       ///< jobs the table registered.
  size_t UniqueContributed = 0; ///< of those, first seen at this table.
  std::string Output;        ///< captured run() bytes.
  uint64_t RunNs = 0;        ///< serial emit time (cache-hit assembly).
  int ExitCode = 0;
};

/// Dedups every selected table's grid by runCached key, preserving first-
/// occurrence order, and records per-table contribution counts.
std::vector<driver::ExperimentJob> collectJobs(std::vector<TableRun> &Tables,
                                               size_t &TotalJobs) {
  std::vector<driver::ExperimentJob> Unique;
  std::unordered_set<std::string> Seen;
  TotalJobs = 0;
  for (TableRun &TR : Tables) {
    std::vector<driver::ExperimentJob> Jobs = TR.T.Jobs();
    TR.JobCount = Jobs.size();
    TotalJobs += Jobs.size();
    for (driver::ExperimentJob &J : Jobs) {
      std::string Key = driver::resultKey(*J.W, J.Opts, J.Machine);
      if (Seen.insert(std::move(Key)).second) {
        ++TR.UniqueContributed;
        Unique.push_back(std::move(J));
      }
    }
  }
  return Unique;
}

/// One full pass: fan the deduped grid out on the pool, then assemble every
/// table serially with stdout captured. Returns total wall nanoseconds.
uint64_t runPass(std::vector<TableRun> &Tables,
                 const std::vector<driver::ExperimentJob> &Unique,
                 unsigned Threads, bool &AnyFailed) {
  uint64_t T0 = nowNs();
  driver::runAll(Unique, Threads);
  for (TableRun &TR : Tables) {
    static TableRun *Current; // captureStdout takes a plain fn ptr.
    Current = &TR;
    uint64_t R0 = nowNs();
    TR.ExitCode = captureStdout([] { return Current->T.Run(); }, TR.Output);
    TR.RunNs = nowNs() - R0;
    if (TR.ExitCode != 0)
      AnyFailed = true;
  }
  return nowNs() - T0;
}

void clearMemoryCaches() {
  driver::clearResultCache();
  driver::clearProfileCache();
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

bool readProcessOutput(const std::string &Cmd, std::string &Out) {
  Out.clear();
  std::FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  return pclose(P) == 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Selected;
  bool Quick = false, List = false, Measure = false;
  unsigned Threads = 0;
  std::string StoreDir, JsonPath = "BENCH_suite.json", OutDir, VerifyDir;
  double MinDiskHitRate = 0.0, MinWarmSpeedup = 0.0;

  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--list"))
      List = true;
    else if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--measure"))
      Measure = true;
    else if (!std::strcmp(argv[I], "--tables") && I + 1 != argc)
      Selected = splitList(argv[++I]);
    else if (!std::strcmp(argv[I], "--threads") && I + 1 != argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--store") && I + 1 != argc)
      StoreDir = argv[++I];
    else if (!std::strcmp(argv[I], "--json") && I + 1 != argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--out-dir") && I + 1 != argc)
      OutDir = argv[++I];
    else if (!std::strcmp(argv[I], "--verify-standalone") && I + 1 != argc)
      VerifyDir = argv[++I];
    else if (!std::strcmp(argv[I], "--min-disk-hit-rate") && I + 1 != argc)
      MinDiskHitRate = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--min-warm-speedup") && I + 1 != argc)
      MinWarmSpeedup = std::atof(argv[++I]);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[I]);
      return 2;
    }
  }

  std::vector<SuiteTable> Registry = allTables();
  if (List) {
    for (const SuiteTable &T : Registry)
      std::printf("%-24s %s\n", T.Name.c_str(), T.Title.c_str());
    return 0;
  }

  if (Quick && Selected.empty())
    Selected = {"table1_workload", "table4_unroll_bs", "table5_bs_vs_ts"};

  std::vector<TableRun> Tables;
  if (Selected.empty()) {
    for (SuiteTable &T : Registry) {
      TableRun TR;
      TR.T = T;
      Tables.push_back(std::move(TR));
    }
  } else {
    for (const std::string &Name : Selected) {
      bool Found = false;
      for (SuiteTable &T : Registry)
        if (T.Name == Name) {
          TableRun TR;
          TR.T = T;
          Tables.push_back(std::move(TR));
          Found = true;
          break;
        }
      if (!Found) {
        std::fprintf(stderr, "unknown table: %s (try --list)\n", Name.c_str());
        return 2;
      }
    }
  }

  if (!StoreDir.empty()) {
    driver::setArtifactStoreDir(StoreDir);
    // Standalone children launched by --verify-standalone reuse the store.
    ::setenv("BSCHED_ARTIFACT_DIR", StoreDir.c_str(), 1);
  }
  if (Measure && !driver::artifactStoreEnabled()) {
    std::fprintf(stderr,
                 "--measure needs a persistent store: pass --store DIR or "
                 "set BSCHED_ARTIFACT_DIR\n");
    return 2;
  }

  size_t TotalJobs = 0;
  std::vector<driver::ExperimentJob> Unique = collectJobs(Tables, TotalJobs);

  bool AnyFailed = false;
  uint64_t ColdNs = 0, WarmNs = 0;
  driver::ArtifactStoreStats ColdStore, WarmStore;
  driver::ResultCacheStats CacheBefore = driver::resultCacheStats();
  bool PassesIdentical = true;

  if (Measure) {
    // Forced-cold pass: disk reads off (an already-warm store must not
    // flatter the cold number), write-back on, memory caches empty.
    std::vector<std::string> ColdOutputs;
    clearMemoryCaches();
    driver::resetArtifactStoreStats();
    driver::setArtifactStoreReads(false);
    ColdNs = runPass(Tables, Unique, Threads, AnyFailed);
    ColdStore = driver::artifactStoreStats();
    for (TableRun &TR : Tables)
      ColdOutputs.push_back(std::move(TR.Output));

    // Warm pass: memory caches cleared again, so every hit is the disk
    // tier's — deserialization standing in for recomputation.
    clearMemoryCaches();
    driver::resetArtifactStoreStats();
    driver::setArtifactStoreReads(true);
    WarmNs = runPass(Tables, Unique, Threads, AnyFailed);
    WarmStore = driver::artifactStoreStats();

    for (size_t I = 0; I != Tables.size(); ++I)
      if (Tables[I].Output != ColdOutputs[I]) {
        PassesIdentical = false;
        std::fprintf(stderr,
                     "SUITE: table %s produced different bytes cold vs "
                     "warm-from-store\n",
                     Tables[I].T.Name.c_str());
      }
  } else {
    ColdNs = runPass(Tables, Unique, Threads, AnyFailed);
    ColdStore = driver::artifactStoreStats();
  }
  driver::ResultCacheStats CacheAfter = driver::resultCacheStats();

  // Emit every table's captured bytes in order: the suite's stdout is the
  // concatenation of the standalone binaries' outputs.
  for (const TableRun &TR : Tables)
    std::fwrite(TR.Output.data(), 1, TR.Output.size(), stdout);

  size_t Saved = TotalJobs - Unique.size();
  std::fprintf(stderr, "suite: %zu tables, %zu jobs, %zu unique (%zu deduped)",
               Tables.size(), TotalJobs, Unique.size(), Saved);
  if (Measure)
    std::fprintf(stderr, ", cold %.2fs, warm %.2fs (%.1fx)",
                 static_cast<double>(ColdNs) / 1e9,
                 static_cast<double>(WarmNs) / 1e9,
                 WarmNs ? static_cast<double>(ColdNs) /
                              static_cast<double>(WarmNs)
                        : 0.0);
  std::fprintf(stderr, "\n");

  // --- Optional byte-identity check against the standalone binaries --------
  bool VerifyFailed = false;
  if (!VerifyDir.empty()) {
    for (const TableRun &TR : Tables) {
      std::string Cmd = VerifyDir + "/bench_" + TR.T.Name + " 2>/dev/null";
      std::string Out;
      if (!readProcessOutput(Cmd, Out) || Out != TR.Output) {
        VerifyFailed = true;
        std::fprintf(stderr,
                     "SUITE VERIFY FAILED: %s standalone output differs "
                     "(%zu vs %zu bytes)\n",
                     TR.T.Name.c_str(), Out.size(), TR.Output.size());
      } else {
        std::fprintf(stderr, "suite verify: %s byte-identical (%zu bytes)\n",
                     TR.T.Name.c_str(), Out.size());
      }
    }
  }

  // --- Per-table artifacts --------------------------------------------------
  if (!OutDir.empty()) {
    std::string MkCmd = "mkdir -p '" + OutDir + "'";
    if (std::system(MkCmd.c_str()) != 0)
      std::fprintf(stderr, "suite: cannot create %s\n", OutDir.c_str());
    for (const TableRun &TR : Tables) {
      std::string TxtPath = OutDir + "/" + TR.T.Name + ".txt";
      if (std::FILE *F = std::fopen(TxtPath.c_str(), "w")) {
        std::fwrite(TR.Output.data(), 1, TR.Output.size(), F);
        std::fclose(F);
      }
      std::string JPath = OutDir + "/" + TR.T.Name + ".json";
      if (std::FILE *F = std::fopen(JPath.c_str(), "w")) {
        std::fprintf(F,
                     "{\n  \"name\": \"%s\",\n  \"title\": \"%s\",\n"
                     "  \"jobs\": %zu,\n  \"unique_contributed\": %zu,\n"
                     "  \"output_bytes\": %zu,\n  \"output_fnv\": \"%016llx\",\n"
                     "  \"emit_ms\": %.3f\n}\n",
                     TR.T.Name.c_str(), jsonEscape(TR.T.Title).c_str(),
                     TR.JobCount, TR.UniqueContributed, TR.Output.size(),
                     static_cast<unsigned long long>(fnv1a(TR.Output)),
                     static_cast<double>(TR.RunNs) / 1e6);
        std::fclose(F);
      }
    }
  }

  // --- Suite JSON -----------------------------------------------------------
  double WarmSpeedup =
      (Measure && WarmNs)
          ? static_cast<double>(ColdNs) / static_cast<double>(WarmNs)
          : 0.0;
  uint64_t WarmReads = WarmStore.DiskHits + WarmStore.DiskMisses +
                       WarmStore.CorruptRejected + WarmStore.VersionRejected +
                       WarmStore.KeyRejected;
  double DiskHitRate =
      WarmReads ? static_cast<double>(WarmStore.DiskHits) /
                      static_cast<double>(WarmReads)
                : 0.0;

  if (std::FILE *J = std::fopen(JsonPath.c_str(), "w")) {
    std::fprintf(J, "{\n");
    std::fprintf(J, "  \"version\": 1,\n");
    std::fprintf(J, "  \"quick\": %s,\n", Quick ? "true" : "false");
    std::fprintf(J, "  \"measure\": %s,\n", Measure ? "true" : "false");
    std::fprintf(J, "  \"threads\": %u,\n", Threads);
    std::fprintf(J, "  \"store_enabled\": %s,\n",
                 driver::artifactStoreEnabled() ? "true" : "false");
    std::fprintf(J, "  \"tables\": [\n");
    for (size_t I = 0; I != Tables.size(); ++I) {
      const TableRun &TR = Tables[I];
      std::fprintf(J,
                   "    {\"name\": \"%s\", \"jobs\": %zu, "
                   "\"unique_contributed\": %zu, \"output_bytes\": %zu, "
                   "\"output_fnv\": \"%016llx\", \"emit_ms\": %.3f}%s\n",
                   TR.T.Name.c_str(), TR.JobCount, TR.UniqueContributed,
                   TR.Output.size(),
                   static_cast<unsigned long long>(fnv1a(TR.Output)),
                   static_cast<double>(TR.RunNs) / 1e6,
                   I + 1 == Tables.size() ? "" : ",");
    }
    std::fprintf(J, "  ],\n");
    std::fprintf(J, "  \"jobs_total\": %zu,\n", TotalJobs);
    std::fprintf(J, "  \"jobs_unique\": %zu,\n", Unique.size());
    std::fprintf(J, "  \"jobs_deduped\": %zu,\n", Saved);
    std::fprintf(J,
                 "  \"result_cache\": {\"hits\": %llu, \"misses\": %llu, "
                 "\"in_flight_waits\": %llu},\n",
                 static_cast<unsigned long long>(CacheAfter.Hits -
                                                 CacheBefore.Hits),
                 static_cast<unsigned long long>(CacheAfter.Misses -
                                                 CacheBefore.Misses),
                 static_cast<unsigned long long>(CacheAfter.InFlightWaits -
                                                 CacheBefore.InFlightWaits));
    auto StoreJson = [&](const char *Name,
                         const driver::ArtifactStoreStats &S) {
      std::fprintf(J,
                   "  \"%s\": {\"disk_hits\": %llu, \"disk_misses\": %llu, "
                   "\"writes\": %llu, \"write_failures\": %llu, "
                   "\"corrupt_rejected\": %llu, \"version_rejected\": %llu, "
                   "\"key_rejected\": %llu},\n",
                   Name, static_cast<unsigned long long>(S.DiskHits),
                   static_cast<unsigned long long>(S.DiskMisses),
                   static_cast<unsigned long long>(S.Writes),
                   static_cast<unsigned long long>(S.WriteFailures),
                   static_cast<unsigned long long>(S.CorruptRejected),
                   static_cast<unsigned long long>(S.VersionRejected),
                   static_cast<unsigned long long>(S.KeyRejected));
    };
    if (Measure) {
      StoreJson("store_cold", ColdStore);
      StoreJson("store_warm", WarmStore);
      std::fprintf(J, "  \"cold_ms\": %.3f,\n",
                   static_cast<double>(ColdNs) / 1e6);
      std::fprintf(J, "  \"warm_ms\": %.3f,\n",
                   static_cast<double>(WarmNs) / 1e6);
      std::fprintf(J, "  \"warm_speedup\": %.3f,\n", WarmSpeedup);
      std::fprintf(J, "  \"disk_hit_rate\": %.4f,\n", DiskHitRate);
      std::fprintf(J, "  \"passes_identical\": %s,\n",
                   PassesIdentical ? "true" : "false");
    } else {
      StoreJson("store", ColdStore);
      std::fprintf(J, "  \"wall_ms\": %.3f,\n",
                   static_cast<double>(ColdNs) / 1e6);
    }
    std::fprintf(J, "  \"verified_standalone\": %s\n",
                 !VerifyDir.empty() && !VerifyFailed ? "true" : "false");
    std::fprintf(J, "}\n");
    std::fclose(J);
  } else {
    std::fprintf(stderr, "suite: cannot write %s\n", JsonPath.c_str());
    return 1;
  }

  // --- Gates ----------------------------------------------------------------
  int Rc = 0;
  if (AnyFailed) {
    std::fprintf(stderr, "SUITE FAILED: a table emitter returned nonzero\n");
    Rc = 1;
  }
  if (!PassesIdentical) {
    std::fprintf(stderr,
                 "SUITE GATE FAILED: cold and warm outputs differ\n");
    Rc = 1;
  }
  if (VerifyFailed)
    Rc = 1;
  if (Measure && MinDiskHitRate > 0 && DiskHitRate < MinDiskHitRate) {
    std::fprintf(stderr,
                 "SUITE GATE FAILED: disk hit rate %.3f < floor %.3f\n",
                 DiskHitRate, MinDiskHitRate);
    Rc = 1;
  }
  if (Measure && MinWarmSpeedup > 0 && WarmSpeedup < MinWarmSpeedup) {
    std::fprintf(stderr,
                 "SUITE GATE FAILED: warm speedup %.2fx < floor %.2fx\n",
                 WarmSpeedup, MinWarmSpeedup);
    Rc = 1;
  }
  return Rc;
}
