//===- bench/bench_extra_hitrate_sweep.cpp - 1993-model hit-rate sweep -----===//
//
// The Kerns & Eggers 1993 study evaluated balanced scheduling on a
// stochastic machine model at 80% and 95% cache hit rates (reporting ~8%
// average speedups). This bench sweeps the hit rate across the full
// workload on that simple model, exposing the crossover the 1995 paper's
// premise rests on: the scarcer the hits, the more worth hiding — and at
// very high hit rates the traditional optimistic assumption becomes right
// and the two schedulers converge.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

std::vector<ExperimentJob> jobs() {
  std::vector<sim::MachineConfig> Machines;
  for (double HitRate : {0.50, 0.80, 0.90, 0.95, 0.99}) {
    sim::MachineConfig C;
    C.SimpleModel = true;
    C.SimpleHitRate = HitRate;
    Machines.push_back(C);
  }
  return gridJobs({balanced(), traditional()}, Machines);
}

int run() {
  heading("Balanced vs traditional scheduling on the 1993 stochastic model "
          "across cache hit rates (miss = 24 cycles, hit = 2, single-cycle "
          "fixed-latency instructions, perfect front end)");

  Table T({"Hit rate", "Mean BS vs TS", "Mean li% BS", "Mean li% TS",
           "BS wins / ties / losses"});
  for (double HitRate : {0.50, 0.80, 0.90, 0.95, 0.99}) {
    sim::MachineConfig C;
    C.SimpleModel = true;
    C.SimpleHitRate = HitRate;
    std::vector<double> Sp, LiB, LiT;
    int Wins = 0, Ties = 0, Losses = 0;
    for (const Workload &W : workloads()) {
      const RunResult &BS = mustRun(W, balanced(), C);
      const RunResult &TS = mustRun(W, traditional(), C);
      double S = speedup(TS, BS);
      Sp.push_back(S);
      LiB.push_back(BS.Sim.loadInterlockShare());
      LiT.push_back(TS.Sim.loadInterlockShare());
      if (S > 1.005)
        ++Wins;
      else if (S < 0.995)
        ++Losses;
      else
        ++Ties;
    }
    T.addRow({fmtPercent(HitRate, 0), fmtDouble(mean(Sp), 3),
              fmtPercent(mean(LiB)), fmtPercent(mean(LiT)),
              std::to_string(Wins) + " / " + std::to_string(Ties) + " / " +
                  std::to_string(Losses)});
  }
  emit(T);

  std::printf(
      "Reference: the 1993 study reported ~8%% average balanced-scheduling "
      "speedups at 80%% and 95%% hit rates on its workload; the shape to "
      "check is monotone decay toward parity as hits become certain.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(extra_hitrate_sweep,
                   "1993 stochastic model: BS vs TS across cache hit rates")
