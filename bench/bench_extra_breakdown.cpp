//===- bench/bench_extra_breakdown.cpp - Where the cycles go ---------------===//
//
// Cycle-accounting breakdown per optimization level (balanced scheduling,
// workload average): issue slots, load interlocks, fixed-latency
// interlocks, and the front-end/memory-system stall buckets. Complements
// Table 8 by showing what replaces the load interlocks the optimizations
// remove — the section-5.1 observation that spill loads and fixed-latency
// interlocks take over at aggressive unrolling lives in these columns.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

struct Level {
  const char *Name;
  int LU;
  bool TrS, LA;
};
constexpr Level Levels[] = {
    {"BS", 1, false, false},          {"BS+LU4", 4, false, false},
    {"BS+LU8", 8, false, false},      {"BS+TrS+LU4", 4, true, false},
    {"BS+LA", 1, false, true},        {"BS+LA+TrS+LU8", 8, true, true},
};

std::vector<ExperimentJob> jobs() {
  std::vector<driver::CompileOptions> Configs;
  for (const Level &L : Levels)
    Configs.push_back(balanced(L.LU, L.TrS, L.LA));
  return gridJobs(Configs);
}

int run() {
  heading("Cycle breakdown per optimization level (balanced scheduling, "
          "average share of total cycles across the 17 kernels)");

  Table T({"Config", "Issue slots", "Load interlock", "Fixed interlock",
           "I-cache", "TLB", "Branch", "MSHR/WB", "Spill+restore instrs"});
  for (const Level &L : Levels) {
    double Issue = 0, Li = 0, Fi = 0, Ic = 0, Tlb = 0, Br = 0, Mw = 0;
    long long SpillInstrs = 0;
    int N = 0;
    for (const Workload &W : workloads()) {
      const RunResult &R = mustRun(W, balanced(L.LU, L.TrS, L.LA));
      double Cyc = static_cast<double>(R.Sim.Cycles);
      if (Cyc == 0)
        continue;
      Issue += static_cast<double>(R.Sim.Counts.total()) / Cyc;
      Li += static_cast<double>(R.Sim.LoadInterlockCycles) / Cyc;
      Fi += static_cast<double>(R.Sim.FixedInterlockCycles) / Cyc;
      Ic += static_cast<double>(R.Sim.ICacheStallCycles) / Cyc;
      Tlb += static_cast<double>(R.Sim.ITlbStallCycles +
                                 R.Sim.DTlbStallCycles) /
             Cyc;
      Br += static_cast<double>(R.Sim.BranchPenaltyCycles) / Cyc;
      Mw += static_cast<double>(R.Sim.MshrStallCycles +
                                R.Sim.WriteBufferStallCycles) /
            Cyc;
      SpillInstrs += static_cast<long long>(R.Sim.Counts.Spills +
                                            R.Sim.Counts.Restores);
      ++N;
    }
    auto Avg = [&](double X) { return fmtPercent(X / N); };
    T.addRow({L.Name, Avg(Issue), Avg(Li), Avg(Fi), Avg(Ic), Avg(Tlb),
              Avg(Br), Avg(Mw), fmtInt(SpillInstrs)});
  }
  emit(T);

  std::printf(
      "Reading guide: unrolling converts load-interlock share into issue "
      "slots (useful work); at LU8 the spill+restore column shows the "
      "register-pressure tax of section 5.1; locality analysis attacks the "
      "load-interlock column directly.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(extra_breakdown,
                   "Cycle-accounting breakdown per optimization level")
