//===- bench/bench_table9_locality.cpp - Table 9 ----------------------------===//
//
// Regenerates Table 9: the locality-analysis summary — speedup of each
// LA-containing combination relative to locality analysis alone and
// relative to plain balanced scheduling.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

struct Combo {
  const char *Name;
  int LU;
  bool TrS;
};
constexpr Combo Combos[] = {
    {"Locality analysis", 1, false},
    {"Locality analysis with loop unrolling by 4", 4, false},
    {"Locality analysis with loop unrolling by 8", 8, false},
    {"Locality analysis with trace scheduling and loop unrolling by 4", 4,
     true},
    {"Locality analysis with trace scheduling and loop unrolling by 8", 8,
     true},
};

std::vector<ExperimentJob> jobs() {
  std::vector<driver::CompileOptions> Configs{balanced(),
                                              balanced(1, false, true)};
  for (const Combo &C : Combos)
    Configs.push_back(balanced(C.LU, C.TrS, true));
  return gridJobs(Configs);
}

int run() {
  heading("Table 9: Summary comparison of locality analysis results "
          "(balanced scheduling throughout)");

  Table T({"Optimizations (in addition to balanced scheduling)",
           "Speedup vs LA alone", "Speedup vs plain BS"});
  for (const Combo &C : Combos) {
    std::vector<double> VsLA, VsBS;
    for (const Workload &W : workloads()) {
      const RunResult &Base = mustRun(W, balanced());
      const RunResult &LAOnly = mustRun(W, balanced(1, false, true));
      const RunResult &R = mustRun(W, balanced(C.LU, C.TrS, true));
      VsLA.push_back(speedup(LAOnly, R));
      VsBS.push_back(speedup(Base, R));
    }
    bool IsLAOnly = C.LU == 1 && !C.TrS;
    T.addRow({C.Name, IsLAOnly ? "n.a." : fmtDouble(mean(VsLA)),
              fmtDouble(mean(VsBS))});
  }
  emit(T);

  // Per-benchmark LA-alone speedups, since the paper singles tomcatv out.
  Table P({"Benchmark", "LA alone vs plain BS", "Spatial refs",
           "Temporal refs", "Refs w/o info"});
  for (const Workload &W : workloads()) {
    const RunResult &Base = mustRun(W, balanced());
    const RunResult &LA = mustRun(W, balanced(1, false, true));
    P.addRow({W.Name, fmtDouble(speedup(Base, LA)),
              std::to_string(LA.Locality.SpatialRefs),
              std::to_string(LA.Locality.TemporalRefs),
              std::to_string(LA.Locality.RefsNoInfo)});
  }
  emit(P);

  std::printf(
      "Paper reference (Table 9): vs LA alone n.a./1.11/1.14/1.12/1.21; vs "
      "plain BS 1.15/1.28/1.31/1.29/1.40; tomcatv's LA-alone speedup 1.5.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table9_locality,
                   "Table 9: locality-analysis summary comparison")
