//===- bench/bench_gap_oracle.cpp - Balanced-scheduling optimality gap ------===//
//
// The question the paper leaves open: how far from cycle-optimal are
// balanced scheduling (BS) and greedy/traditional list scheduling (TS)?
// For every workload and machine model (the exact oracle's modelled
// load-to-use latency: L1 hit, L2, memory), compiles each scheduler's
// output up to (but excluding) register allocation, asks the
// branch-and-bound oracle (sched/Exact.h) for the proven per-block optimum,
// and reports the cycle gap over solver-closed blocks plus closure rates
// and solve time. Emits machine-readable BENCH_gap.json.
//
// Usage:
//   bench_gap_oracle [--quick] [--json PATH] [--unroll N]
//                    [--min-closure PCT]
//
//   --quick        reduced solver budgets (the CI mode).
//   --json PATH    where to write BENCH_gap.json (default: cwd).
//   --unroll N     unroll factor for every compile (default 4).
//   --min-closure  exit 1 if the overall %-closed falls below PCT.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Workloads.h"
#include "sched/DepDAG.h"
#include "sched/Exact.h"
#include "support/Str.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace bsched;
using namespace bsched::driver;
using namespace bsched::sched;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One machine-model axis point: the exact model's load-to-use latency.
struct ModelPoint {
  const char *Tag;
  int LoadLatency;
};

/// Per-(workload, model, scheduler) solver outcome.
struct SchedCell {
  unsigned Attempted = 0, Closed = 0, TimedOut = 0, TooLarge = 0;
  uint64_t FastCycles = 0, OptCycles = 0; ///< summed over closed blocks.
  uint64_t SolveNs = 0, Expanded = 0;

  double gapPct() const {
    return OptCycles == 0 ? 0.0
                          : 100.0 *
                                (static_cast<double>(FastCycles) -
                                 static_cast<double>(OptCycles)) /
                                static_cast<double>(OptCycles);
  }
  void add(const SchedCell &O) {
    Attempted += O.Attempted;
    Closed += O.Closed;
    TimedOut += O.TimedOut;
    TooLarge += O.TooLarge;
    FastCycles += O.FastCycles;
    OptCycles += O.OptCycles;
    SolveNs += O.SolveNs;
    Expanded += O.Expanded;
  }
};

/// Compiles \p P under \p Kind (stopping before register allocation) and
/// runs the exact oracle over every schedulable block.
SchedCell solveBlocks(const lang::Program &P, SchedulerKind Kind, int Unroll,
                      const exact::ExactOptions &EO) {
  CompileOptions Opts;
  Opts.Scheduler = Kind;
  Opts.UnrollFactor = Unroll;
  Opts.StopBeforeRegAlloc = true;
  Opts.VerifyPasses = false; // timing/measuring; tests verify.
  CompileResult C = compileProgram(P, Opts);
  if (!C.ok()) {
    std::fprintf(stderr, "FATAL: compile [%s]: %s\n", Opts.tag().c_str(),
                 C.Error.c_str());
    std::exit(1);
  }
  SchedCell Cell;
  for (const ir::BasicBlock &B : C.M.Fn.Blocks) {
    if (B.Instrs.size() <= 2)
      continue;
    if (B.Instrs.size() > EO.MaxNodes) {
      ++Cell.TooLarge;
      continue;
    }
    std::vector<const ir::Instr *> Ptrs;
    Ptrs.reserve(B.Instrs.size());
    for (const ir::Instr &I : B.Instrs)
      Ptrs.push_back(&I);
    DepDAG G = buildDepDAG(Ptrs);
    addBlockControlEdges(G, Ptrs);
    // The block is already in scheduled order: identity IS this scheduler's
    // issue order under the model.
    std::vector<unsigned> Fast(Ptrs.size());
    for (unsigned K = 0; K != Ptrs.size(); ++K)
      Fast[K] = K;
    unsigned FastCycles = exact::evaluateOrder(G, Ptrs, Fast, EO);
    uint64_t T0 = nowNs();
    exact::ExactResult R = exact::scheduleExact(G, Ptrs, EO, &Fast);
    Cell.SolveNs += nowNs() - T0;
    Cell.Expanded += R.Expanded;
    ++Cell.Attempted;
    if (R.closed()) {
      ++Cell.Closed;
      Cell.FastCycles += FastCycles;
      Cell.OptCycles += R.Cycles;
    } else {
      ++Cell.TimedOut;
    }
  }
  return Cell;
}

struct WorkloadRow {
  std::string Name;
  SchedCell BS, TS;
};

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  std::string JsonPath = "BENCH_gap.json";
  int Unroll = 4;
  double MinClosure = -1.0;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--quick"))
      Quick = true;
    else if (!std::strcmp(argv[I], "--json") && I + 1 != argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--unroll") && I + 1 != argc)
      Unroll = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--min-closure") && I + 1 != argc)
      MinClosure = std::atof(argv[++I]);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[I]);
      return 2;
    }
  }

  exact::ExactOptions EO;
  if (Quick) {
    EO.MaxNodes = 32;
    EO.MaxExpansions = 30000;
  }
  const std::vector<ModelPoint> Models = {
      {"hit", ir::LoadHitLatency}, {"l2", 8}, {"mem", 50}};

  std::printf("optimality-gap oracle (%s mode, unroll %d, "
              "max-nodes %u, budget %llu)\n",
              Quick ? "quick" : "full", Unroll, EO.MaxNodes,
              static_cast<unsigned long long>(EO.MaxExpansions));

  std::vector<std::pair<ModelPoint, std::vector<WorkloadRow>>> Results;
  SchedCell Overall;
  for (const ModelPoint &M : Models) {
    exact::ExactOptions MEO = EO;
    MEO.LoadLatency = M.LoadLatency;
    std::vector<WorkloadRow> Rows;
    SchedCell ModelBS, ModelTS;
    for (const Workload &W : workloads()) {
      lang::Program P = parseWorkload(W);
      WorkloadRow Row;
      Row.Name = W.Name;
      Row.BS = solveBlocks(P, SchedulerKind::Balanced, Unroll, MEO);
      Row.TS = solveBlocks(P, SchedulerKind::Traditional, Unroll, MEO);
      ModelBS.add(Row.BS);
      ModelTS.add(Row.TS);
      Rows.push_back(std::move(Row));
    }
    Overall.add(ModelBS);
    Overall.add(ModelTS);
    unsigned Att = ModelBS.Attempted + ModelTS.Attempted;
    unsigned Cls = ModelBS.Closed + ModelTS.Closed;
    std::printf("  model %-4s  BS gap %5.2f%%  TS gap %5.2f%%  closed "
                "%u/%u (%.0f%%)  solve %.1f ms\n",
                M.Tag, ModelBS.gapPct(), ModelTS.gapPct(), Cls, Att,
                Att ? 100.0 * Cls / Att : 0.0,
                static_cast<double>(ModelBS.SolveNs + ModelTS.SolveNs) / 1e6);
    Results.emplace_back(M, std::move(Rows));
  }

  double ClosurePct = Overall.Attempted
                          ? 100.0 * Overall.Closed / Overall.Attempted
                          : 0.0;
  std::printf("summary: %u blocks attempted, %u closed (%.1f%%), "
              "%u timed out, %u over the node budget\n",
              Overall.Attempted, Overall.Closed, ClosurePct, Overall.TimedOut,
              Overall.TooLarge / 2);

  // --- JSON -----------------------------------------------------------------
  {
    auto EmitCell = [](std::ostringstream &J, const char *Key,
                       const SchedCell &C) {
      J << "\"" << Key << "\": {\"attempted\": " << C.Attempted
        << ", \"closed\": " << C.Closed << ", \"timed_out\": " << C.TimedOut
        << ", \"too_large\": " << C.TooLarge
        << ", \"cycles\": " << C.FastCycles
        << ", \"optimal_cycles\": " << C.OptCycles
        << ", \"gap_pct\": " << fmtDouble(C.gapPct(), 2)
        << ", \"solve_ns\": " << C.SolveNs
        << ", \"expanded\": " << C.Expanded << "}";
    };
    std::ostringstream J;
    J << "{\n  \"schema\": \"bsched-gap-oracle-v1\",\n";
    J << "  \"quick\": " << (Quick ? "true" : "false")
      << ", \"unroll\": " << Unroll << ", \"max_nodes\": " << EO.MaxNodes
      << ", \"max_expansions\": " << EO.MaxExpansions << ",\n";
    J << "  \"models\": [\n";
    for (size_t MI = 0; MI != Results.size(); ++MI) {
      const auto &[M, Rows] = Results[MI];
      J << "    {\"model\": \"" << M.Tag
        << "\", \"load_latency\": " << M.LoadLatency << ",\n"
        << "     \"workloads\": [\n";
      for (size_t WI = 0; WI != Rows.size(); ++WI) {
        J << "      {\"name\": \"" << Rows[WI].Name << "\", ";
        EmitCell(J, "bs", Rows[WI].BS);
        J << ", ";
        EmitCell(J, "ts", Rows[WI].TS);
        J << "}" << (WI + 1 == Rows.size() ? "\n" : ",\n");
      }
      J << "     ]}" << (MI + 1 == Results.size() ? "\n" : ",\n");
    }
    J << "  ],\n  \"summary\": {\"attempted\": " << Overall.Attempted
      << ", \"closed\": " << Overall.Closed
      << ", \"closure_pct\": " << fmtDouble(ClosurePct, 1)
      << ", \"solve_ns\": " << Overall.SolveNs << "}\n}\n";
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Out << J.str();
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  if (MinClosure >= 0.0 && ClosurePct < MinClosure) {
    std::fprintf(stderr, "FAIL: closure %.1f%% below the %.1f%% floor\n",
                 ClosurePct, MinClosure);
    return 1;
  }
  return 0;
}
