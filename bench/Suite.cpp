//===- bench/Suite.cpp - Suite registry support -----------------------------===//

#include "Suite.h"

#include <cstdio>
#include <string>

#include <unistd.h>

using namespace bsched;
using namespace bsched::bench;

int bench::runTableStandalone(const SuiteTable &T) {
  driver::runAll(T.Jobs());
  return T.Run();
}

int bench::captureStdout(int (*Fn)(), std::string &Captured) {
  Captured.clear();
  std::fflush(stdout);
  int SavedFd = ::dup(STDOUT_FILENO);
  if (SavedFd < 0)
    return 1;

  std::string Path = "/tmp/bsched-suite-capture." +
                     std::to_string(static_cast<unsigned long>(::getpid()));
  std::FILE *Tmp = std::fopen(Path.c_str(), "w+");
  if (!Tmp) {
    ::close(SavedFd);
    return 1;
  }
  // Unlink immediately: the fd keeps the bytes alive, nothing leaks on any
  // exit path.
  ::unlink(Path.c_str());
  if (::dup2(::fileno(Tmp), STDOUT_FILENO) < 0) {
    std::fclose(Tmp);
    ::close(SavedFd);
    return 1;
  }

  int Rc = Fn();

  std::fflush(stdout);
  ::dup2(SavedFd, STDOUT_FILENO);
  ::close(SavedFd);

  std::fseek(Tmp, 0, SEEK_END);
  long Len = std::ftell(Tmp);
  if (Len > 0) {
    Captured.resize(static_cast<size_t>(Len));
    std::fseek(Tmp, 0, SEEK_SET);
    size_t Read = std::fread(Captured.data(), 1, Captured.size(), Tmp);
    Captured.resize(Read);
  }
  std::fclose(Tmp);
  return Rc;
}
