//===- bench/bench_table7_trace_bs_vs_ts.cpp - Table 7 ----------------------===//
//
// Regenerates Table 7: speedup of balanced over traditional scheduling, per
// benchmark, without trace scheduling (no LU / LU4 / LU8) and with trace
// scheduling (LU4 / LU8).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

struct Cfg {
  int LU;
  bool TrS;
};
constexpr Cfg Cfgs[] = {{1, false}, {4, false}, {8, false}, {4, true},
                        {8, true}};

std::vector<ExperimentJob> jobs() {
  std::vector<driver::CompileOptions> Configs;
  for (const Cfg &C : Cfgs) {
    Configs.push_back(balanced(C.LU, C.TrS));
    Configs.push_back(traditional(C.LU, C.TrS));
  }
  return gridJobs(Configs);
}

int run() {
  heading("Table 7: Speedup of balanced scheduling over traditional "
          "scheduling: loop unrolling alone and trace scheduling with loop "
          "unrolling");

  Table T({"Benchmark", "No LU", "LU 4", "LU 8", "TrS + LU 4", "TrS + LU 8"});

  std::vector<double> Acc[5];
  for (const Workload &W : workloads()) {
    std::vector<std::string> Row{W.Name};
    for (int K = 0; K != 5; ++K) {
      const RunResult &BS = mustRun(W, balanced(Cfgs[K].LU, Cfgs[K].TrS));
      const RunResult &TS = mustRun(W, traditional(Cfgs[K].LU, Cfgs[K].TrS));
      double S = speedup(TS, BS);
      Acc[K].push_back(S);
      Row.push_back(fmtDouble(S));
    }
    T.addRow(Row);
  }
  T.addSeparator();
  std::vector<std::string> Avg{"AVERAGE"};
  for (int K = 0; K != 5; ++K)
    Avg.push_back(fmtDouble(mean(Acc[K])));
  T.addRow(Avg);
  emit(T);

  std::printf("Paper reference (Table 7 averages): 1.05 / 1.12 / 1.18 "
              "without trace scheduling; 1.14 / 1.16 with it.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table7_trace_bs_vs_ts,
                   "Table 7: BS over TS, unrolling alone and with trace "
                   "scheduling")
