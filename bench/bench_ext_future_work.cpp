//===- bench/bench_ext_future_work.cpp - Section-6 extensions --------------===//
//
// Measures the three extensions the paper names as future work:
//
//  1. "examine its effects on wider-issue (superscalar) processors that
//     require considerable instruction-level parallelism": BS vs TS at
//     issue widths 1, 2 and 4;
//  2. "incorporating multi-cycle instructions with fixed latencies into the
//     balanced scheduling algorithm" (BalanceOptions::BalanceFixedOps);
//  3. "developing heuristics to statically choose between the two schedulers
//     on a basic block basis" (SchedulerKind::Hybrid).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

std::vector<ExperimentJob> jobs() {
  std::vector<sim::MachineConfig> Widths(3);
  Widths[0].IssueWidth = 1;
  Widths[1].IssueWidth = 2;
  Widths[2].IssueWidth = 4;
  std::vector<ExperimentJob> Jobs = gridJobs({balanced(), traditional()}, Widths);
  CompileOptions BF = balanced();
  BF.Balance.BalanceFixedOps = true;
  for (ExperimentJob &J :
       gridJobs({BF, makeOptions(sched::SchedulerKind::Hybrid)}))
    Jobs.push_back(std::move(J));
  return Jobs;
}

int run() {
  // --- 1. Superscalar ------------------------------------------------------
  heading("Extension 1: balanced vs traditional scheduling on wider-issue "
          "in-order machines (per-cycle limits: 2 int, 2 fp, 1 memory)");
  {
    Table T({"Issue width", "Mean BS vs TS", "Mean speedup vs width 1 (BS)",
             "Mean li% BS", "Mean li% TS"});
    std::vector<const RunResult *> Width1;
    for (unsigned Width : {1u, 2u, 4u}) {
      sim::MachineConfig C;
      C.IssueWidth = Width;
      std::vector<double> Sp, Rel, LiB, LiT;
      size_t Idx = 0;
      for (const Workload &W : workloads()) {
        const RunResult &BS = mustRun(W, balanced(), C);
        const RunResult &TS = mustRun(W, traditional(), C);
        Sp.push_back(speedup(TS, BS));
        LiB.push_back(BS.Sim.loadInterlockShare());
        LiT.push_back(TS.Sim.loadInterlockShare());
        if (Width == 1u)
          Width1.push_back(&BS);
        else
          Rel.push_back(speedup(*Width1[Idx], BS));
        ++Idx;
      }
      T.addRow({std::to_string(Width), fmtDouble(mean(Sp), 3),
                Width == 1u ? "n.a." : fmtDouble(mean(Rel), 3),
                fmtPercent(mean(LiB)), fmtPercent(mean(LiT))});
    }
    emit(T);
    std::printf("Paper hypothesis: balanced scheduling 'should perform even "
                "better when more parallelism is available' and wider issue "
                "consumes ILP faster, so its advantage should hold or grow "
                "with width.\n\n");
  }

  // --- 2. Balancing fixed-latency operations -------------------------------
  heading("Extension 2: balanced weights for fixed multi-cycle instructions "
          "(BalanceFixedOps)");
  {
    Table T({"Benchmark", "BS vs TS (loads only)", "BS vs TS (+fixed ops)",
             "fi% (loads only)", "fi% (+fixed ops)"});
    std::vector<double> Plain, Fixed;
    for (const Workload &W : workloads()) {
      const RunResult &TS = mustRun(W, traditional());
      const RunResult &BS = mustRun(W, balanced());
      CompileOptions BF = balanced();
      BF.Balance.BalanceFixedOps = true;
      const RunResult &RF = mustRun(W, BF);
      double S1 = speedup(TS, BS), S2 = speedup(TS, RF);
      Plain.push_back(S1);
      Fixed.push_back(S2);
      auto Fi = [](const RunResult &R) {
        return R.Sim.Cycles == 0
                   ? 0.0
                   : static_cast<double>(R.Sim.FixedInterlockCycles) /
                         static_cast<double>(R.Sim.Cycles);
      };
      T.addRow({W.Name, fmtDouble(S1), fmtDouble(S2), fmtPercent(Fi(BS)),
                fmtPercent(Fi(RF))});
    }
    T.addSeparator();
    T.addRow({"AVERAGE", fmtDouble(mean(Plain)), fmtDouble(mean(Fixed))});
    emit(T);
    std::printf("The extension matters exactly where the paper says balanced "
                "scheduling loses: kernels whose fixed-latency interlocks "
                "dominate (MDG, ear).\n\n");
  }

  // --- 3. Hybrid per-block scheduler ---------------------------------------
  heading("Extension 3: static per-block choice between the schedulers "
          "(Hybrid)");
  {
    Table T({"Benchmark", "TS", "BS", "HY", "Hybrid >= min(BS,TS)?"});
    std::vector<double> SpB, SpH;
    int NotWorse = 0;
    for (const Workload &W : workloads()) {
      const RunResult &TS = mustRun(W, traditional());
      const RunResult &BS = mustRun(W, balanced());
      CompileOptions HO = makeOptions(sched::SchedulerKind::Hybrid);
      const RunResult &HY = mustRun(W, HO);
      double B = speedup(TS, BS);
      double H = speedup(TS, HY);
      SpB.push_back(B);
      SpH.push_back(H);
      bool Ok = HY.Sim.Cycles <=
                std::max(BS.Sim.Cycles, TS.Sim.Cycles);
      NotWorse += Ok;
      T.addRow({W.Name, "1.00", fmtDouble(B), fmtDouble(H),
                Ok ? "yes" : "no"});
    }
    T.addSeparator();
    T.addRow({"AVERAGE", "1.00", fmtDouble(mean(SpB)), fmtDouble(mean(SpH)),
              std::to_string(NotWorse) + "/17"});
    emit(T);
    std::printf("The chooser aims to keep balanced scheduling's wins while "
                "avoiding its losses on fixed-latency-bound blocks (the "
                "paper's ear/MDG caveat).\n");
  }
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(ext_future_work,
                   "Section-6 extensions: issue width, fixed-op balancing, "
                   "hybrid scheduler")
