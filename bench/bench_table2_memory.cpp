//===- bench/bench_table2_memory.cpp - Table 2: memory hierarchy -----------===//
//
// Regenerates Table 2: the simulated memory-hierarchy parameters, printed
// from the live MachineConfig (not hard-coded prose), plus a measured
// latency verification: a pointer-stride kernel sized to each level must see
// average load latencies bracketing that level's configured latency.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

#include "lang/Parser.h"
#include "regalloc/LinearScan.h"
#include "sched/Schedule.h"
#include "lower/Lower.h"

using namespace bsched;
using namespace bsched::bench;

namespace {

/// Measures average cycles per iteration of a serial pointer-stride loop
/// whose footprint targets one cache level.
double measureSerialLoadLatency(int64_t Elems, int64_t StrideElems) {
  int64_t Iters = 40000;
  std::string Src = "array A[" + std::to_string(Elems) +
                    "] int;\narray Out[4] output;\nvar k int = 0;\n";
  // Build a cyclic permutation with the given stride, then chase it.
  Src += "for (i = 0; i < " + std::to_string(Elems) + "; i += 1) { A[i] = 0; }\n";
  Src += "for (i = 0; i < " + std::to_string(Elems / StrideElems) +
         "; i += 1) { A[i * " + std::to_string(StrideElems) + "] = i * " +
         std::to_string(StrideElems) + " + " + std::to_string(StrideElems) +
         "; }\n";
  Src += "A[" + std::to_string(Elems - StrideElems) + "] = 0;\n";
  Src += "for (r = 0; r < " + std::to_string(Iters) +
         "; r += 1) { k = A[k]; }\n";
  Src += "Out[0] = k + 0.0;\n";

  lang::ParseResult PR = lang::parseProgram(Src, "latency-probe");
  if (!PR.ok() || !lang::checkProgram(PR.Prog).empty()) {
    std::fprintf(stderr, "latency probe failed to parse\n");
    std::exit(1);
  }
  lower::LowerResult LR = lower::lowerProgram(PR.Prog);
  sched::scheduleFunction(LR.M, sched::SchedulerKind::Traditional);
  regalloc::allocateRegisters(LR.M);
  sim::MachineConfig C;
  sim::SimResult Cold = sim::simulate(LR.M, C);
  // Cycles per chase iteration ~ issue + load latency + loop overhead; the
  // chase loop dominates the run.
  return static_cast<double>(Cold.LoadInterlockCycles) /
         static_cast<double>(Iters);
}

// The table prints live MachineConfig parameters and probes latencies with
// direct simulate() calls; nothing routes through runCached, so the grid is
// empty.
std::vector<driver::ExperimentJob> jobs() { return {}; }

int run() {
  heading("Table 2: Memory hierarchy parameters (simulated 21164)");

  sim::MachineConfig C;
  Table T({"Level", "Size", "Assoc", "Line", "Latency (cycles)"});
  auto Kb = [](uint64_t B) { return std::to_string(B / 1024) + "KB"; };
  T.addRow({"L1 I-cache", Kb(C.L1I.SizeBytes), std::to_string(C.L1I.Assoc),
            std::to_string(C.L1I.LineSize) + "B",
            std::to_string(C.L1I.Latency)});
  T.addRow({"L1 D-cache (lockup-free)", Kb(C.L1D.SizeBytes),
            std::to_string(C.L1D.Assoc), std::to_string(C.L1D.LineSize) + "B",
            std::to_string(C.L1D.Latency)});
  T.addRow({"L2 unified", Kb(C.L2.SizeBytes), std::to_string(C.L2.Assoc),
            std::to_string(C.L2.LineSize) + "B", std::to_string(C.L2.Latency)});
  T.addRow({"L3 board cache", Kb(C.L3.SizeBytes), std::to_string(C.L3.Assoc),
            std::to_string(C.L3.LineSize) + "B", std::to_string(C.L3.Latency)});
  T.addRow({"Main memory", "-", "-", "-", std::to_string(C.MemoryLatency)});
  T.addSeparator();
  T.addRow({"MSHRs (outstanding misses)", std::to_string(C.NumMSHRs)});
  T.addRow({"Write buffer entries", std::to_string(C.WriteBufferEntries)});
  T.addRow({"DTLB / ITLB entries",
            std::to_string(C.DTlbEntries) + " / " +
                std::to_string(C.ITlbEntries)});
  T.addRow({"TLB refill", "", "", "", std::to_string(C.TlbRefillLatency)});
  T.addRow({"Branch predictor", std::to_string(C.BranchPredictorEntries) +
                                    " 2-bit counters"});
  T.addRow({"Mispredict penalty", "", "", "",
            std::to_string(C.BranchMispredictPenalty)});
  emit(T);

  heading("Verification: measured serial-load stall per level");
  Table V({"Footprint", "Expected level", "Configured latency",
           "Measured stall/load"});
  struct Probe {
    const char *Name;
    int64_t Elems;
    const char *Level;
    int Latency;
  } Probes[] = {
      {"4KB", 512, "L1", C.L1D.Latency},
      {"64KB", 8192, "L2", C.L2.Latency},
      {"1MB", 131072, "L3", C.L3.Latency},
      {"8MB", 1048576, "memory", C.MemoryLatency},
  };
  for (const Probe &P : Probes) {
    double Measured = measureSerialLoadLatency(P.Elems, /*StrideElems=*/8);
    V.addRow({P.Name, P.Level, std::to_string(P.Latency),
              fmtDouble(Measured, 1)});
  }
  emit(V);
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(table2_memory,
                   "Table 2: memory hierarchy parameters and latency probes")
