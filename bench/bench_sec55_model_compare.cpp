//===- bench/bench_sec55_model_compare.cpp - Section 5.5 --------------------===//
//
// Regenerates the section-5.5 comparison: balanced scheduling's advantage
// over traditional scheduling under the original study's simple stochastic
// machine model (single-cycle fixed-latency instructions, probabilistic
// cache, perfect front end) versus the full 21164 model. The paper estimates
// a 10% advantage under the simple model shrinking to 4% on the 21164 for
// the four programs the two studies share; the mechanism is the fixed
// multi-cycle latencies the simple model hides.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

// Four Perfect Club programs stand in for the four the studies share.
constexpr const char *Shared[] = {"ARC2D", "BDNA", "DYFESM", "TRFD"};

// Only the shared programs run here, so the grid lists those cells directly
// instead of the whole workload (gridJobs would sweep all 17).
std::vector<ExperimentJob> jobs() {
  std::vector<ExperimentJob> Jobs;
  for (const char *Name : Shared)
    for (double HitRate : {0.0, 0.80, 0.95})
      for (const CompileOptions &O : {balanced(), traditional()}) {
        sim::MachineConfig M;
        if (HitRate != 0.0) {
          M.SimpleModel = true;
          M.SimpleHitRate = HitRate;
        }
        Jobs.push_back({findWorkload(Name), O, M});
      }
  return Jobs;
}

int run() {
  heading("Section 5.5: Simple stochastic model (1993 study) vs the 21164 "
          "model — BS-over-TS speedup under each");

  for (double HitRate : {0.80, 0.95}) {
    sim::MachineConfig Simple;
    Simple.SimpleModel = true;
    Simple.SimpleHitRate = HitRate;

    Table T({"Benchmark", "BSvTS (simple)", "BSvTS (21164)",
             "li% BS simple", "li% BS 21164"});
    std::vector<double> SimpleSp, FullSp;
    for (const char *Name : Shared) {
      const Workload &W = *findWorkload(Name);
      const RunResult &SB = mustRun(W, balanced(), Simple);
      const RunResult &ST = mustRun(W, traditional(), Simple);
      const RunResult &FB = mustRun(W, balanced());
      const RunResult &FT = mustRun(W, traditional());
      double S1 = speedup(ST, SB);
      double S2 = speedup(FT, FB);
      SimpleSp.push_back(S1);
      FullSp.push_back(S2);
      T.addRow({Name, fmtDouble(S1, 3), fmtDouble(S2, 3),
                fmtPercent(SB.Sim.loadInterlockShare()),
                fmtPercent(FB.Sim.loadInterlockShare())});
    }
    T.addSeparator();
    T.addRow({"AVERAGE", fmtDouble(mean(SimpleSp), 3),
              fmtDouble(mean(FullSp), 3)});
    T.setCaption("Simple-model cache hit rate " + fmtPercent(HitRate, 0) +
                 " (the 1993 study used 80% and 95%)");
    emit(T);
  }

  std::printf(
      "Paper reference (section 5.5): ~10%% BS advantage under the simple "
      "model vs ~4%% when modeling the 21164 for the shared programs; the "
      "gap comes from fixed multi-cycle latencies and the full memory "
      "system, which the simple model omits.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(sec55_model_compare,
                   "Section 5.5: simple stochastic model vs the 21164 model")
