//===- bench/bench_ablation_weight_cap.cpp - Ablation: weight cap -----------===//
//
// Ablation of the paper's section-4.2 design choices in the balanced
// scheduler:
//   1. the 50-cycle load-weight cap ("we limited load weights to a maximum
//      of 50" as a register-pressure aid, footnote 1);
//   2. the hit-annotation exemption (LA-marked hits keep the optimistic
//      weight so their padders serve miss loads, section 3.3);
//   3. this implementation's pressure ceiling in the list scheduler (the
//      stand-in for Multiflow's integrated scheduling/allocation).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Suite.h"

using namespace bsched;
using namespace bsched::bench;
using namespace bsched::driver;

namespace {

struct Variant {
  const char *Name;
  double WeightCap;
  bool RespectHits;
  unsigned PressureThreshold;
  bool LA;
};

CompileOptions optionsFor(const Variant &V, int Unroll) {
  CompileOptions O = balanced(Unroll, /*TrS=*/false, V.LA);
  O.Balance.WeightCap = V.WeightCap;
  O.Balance.RespectHitAnnotations = V.RespectHits;
  O.Balance.PressureThreshold = V.PressureThreshold;
  return O;
}

// Only the TS baseline is cacheable: the variant knobs (WeightCap,
// RespectHitAnnotations) are not part of the runCached key, so those runs
// stay on runWorkload inside run().
std::vector<ExperimentJob> jobs() { return gridJobs({traditional(8)}); }

int run() {
  heading("Ablation: balanced-scheduler design choices (unrolling by 8, "
          "where register pressure is the binding constraint)");

  const Variant Variants[] = {
      {"paper settings (cap 50, pressure ceiling)", 50, true, 24, false},
      {"uncapped load weights", 1e9, true, 24, false},
      {"tight cap (8)", 8, true, 24, false},
      {"no pressure ceiling", 50, true, 0, false},
      {"LA, hits exempt from balancing (paper)", 50, true, 24, true},
      {"LA, hits balanced like misses", 50, false, 24, true},
  };

  Table T({"Variant", "Mean speedup vs TS+LU8", "Mean li% of cycles",
           "Total spill+restore instrs"});
  for (const Variant &V : Variants) {
    std::vector<double> Sp, Li;
    long long SpillInstrs = 0;
    for (const Workload &W : workloads()) {
      CompileOptions TS = traditional(8);
      const RunResult &Base = mustRun(W, TS);
      RunResult R = runWorkload(W, optionsFor(V, 8));
      if (!R.ok()) {
        std::fprintf(stderr, "FATAL: %s\n", R.Error.c_str());
        return 1;
      }
      Sp.push_back(speedup(Base, R));
      Li.push_back(R.Sim.loadInterlockShare());
      SpillInstrs += R.Sim.Counts.Spills + R.Sim.Counts.Restores;
    }
    T.addRow({V.Name, fmtDouble(mean(Sp), 3), fmtPercent(mean(Li)),
              fmtInt(SpillInstrs)});
  }
  emit(T);

  std::printf(
      "Expected shape: uncapped weights and a disabled pressure ceiling "
      "increase spill traffic and erode the BS advantage; a too-tight cap "
      "forfeits latency hiding; balancing LA-marked hits wastes padders the "
      "paper reserves for misses.\n");
  return 0;
}

} // namespace

BSCHED_SUITE_TABLE(ablation_weight_cap,
                   "Ablation: balanced-scheduler design choices (weight cap, "
                   "hit exemption, pressure ceiling)")
